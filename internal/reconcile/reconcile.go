// Package reconcile is the self-healing control plane over a deployed
// NWS hierarchy: the long-running counterpart of §4.3's "possible
// platform evolution". A Reconciler watches a live deployment on any
// platform.Platform, and every interval re-enters the pipeline — probe
// liveness, re-Map the live hosts with ENV, re-Plan, diff against the
// plan actually running — and applies only the delta through the
// incremental deploy path, so healthy cliques keep monitoring while
// dead sensors are cut out, partitioned machines drop off, and
// returning or joining machines are folded back in.
//
// Detection is two-layered: platform health (is the node up at all)
// plus an active reachability probe from each mapping run's anchor, so
// a partition — host alive but unreachable — is drift too. Structural
// repair is plan-driven: a fault that does not change the optimal plan
// (a degraded link, say) is deliberately not "repaired"; measuring the
// degradation is the monitoring system's job, not the control plane's.
package reconcile

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"nwsenv/internal/core"
	"nwsenv/internal/deploy"
	"nwsenv/internal/metrics"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/platform"
	"nwsenv/internal/simnet"
)

// Config tunes a Reconciler.
type Config struct {
	// Runs are the mapping templates: the full candidate membership,
	// including hosts currently dead (so churned machines can rejoin).
	// Each round maps the live subset of each run.
	Runs []core.MapRun
	// Interval paces the reconcile rounds (default 5 minutes).
	Interval time.Duration
	// MaxRounds bounds Run (0 = until ctx cancellation).
	MaxRounds int
	// OnRound observes every completed round.
	OnRound func(Round)
}

// Round is the artifact of one reconcile pass.
type Round struct {
	// Index numbers the round from 0.
	Index int
	// Started is the runtime clock at the start of the pass.
	Started time.Duration
	// Live and Dead partition the candidate node IDs by the health
	// probe's verdict.
	Live, Dead []string
	// Diff is the drift between the running plan and the freshly
	// computed one (nil if the pass failed before planning).
	Diff *deploy.Diff
	// Validation is the fresh plan's §2.3 validation.
	Validation *deploy.Validation
	// Delta reports the incremental apply (nil when Diff was empty).
	Delta *deploy.DeltaReport
	// DetectedAt/RepairedAt timestamp drift detection and the end of
	// the repair (zero when there was no drift).
	DetectedAt, RepairedAt time.Duration
	// Err carries a transient failure (mapping aborted mid-fault,
	// unplannable interim topology, ...); the loop retries next round.
	Err error
}

// Drifted reports whether the round saw a non-empty diff.
func (r Round) Drifted() bool { return r.Diff != nil && !r.Diff.Empty() }

// Repaired reports whether the round applied a repair successfully.
func (r Round) Repaired() bool { return r.Delta != nil && r.Err == nil && r.RepairedAt > 0 }

// Reconciler drives reconcile rounds over one deployment.
type Reconciler struct {
	pl  *core.Pipeline
	dep *deploy.Deployment
	cfg Config

	mu     sync.Mutex
	rounds []Round
}

// New builds a reconciler for a running deployment. The pipeline must
// be the one that produced the deployment (same platform and options),
// and cfg.Runs the mapping runs it was deployed from (or a superset:
// extra hosts are candidates for joining).
func New(pl *core.Pipeline, dep *deploy.Deployment, cfg Config) *Reconciler {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	return &Reconciler{pl: pl, dep: dep, cfg: cfg}
}

// Deployment returns the watched deployment (its Plan advances as
// repairs are applied).
func (r *Reconciler) Deployment() *deploy.Deployment { return r.dep }

// Rounds returns a snapshot of the round history.
func (r *Reconciler) Rounds() []Round {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Round(nil), r.rounds...)
}

// Run reconciles every Interval until ctx is canceled (or MaxRounds
// passes completed). On a simulated platform it must run inside a
// simulation process; sleeps are chunked so wall-clock platforms
// notice cancellation within a second.
func (r *Reconciler) Run(ctx context.Context) error {
	for i := 0; r.cfg.MaxRounds == 0 || i < r.cfg.MaxRounds; i++ {
		if err := r.sleep(ctx, r.cfg.Interval); err != nil {
			return err
		}
		round := r.Step(ctx)
		if r.cfg.OnRound != nil {
			r.cfg.OnRound(round)
		}
		if round.Err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return nil
}

// sleep waits d on the platform runtime, checking ctx about once a
// second so SIGINT-driven cancellation does not hang a wall-clock loop.
func (r *Reconciler) sleep(ctx context.Context, d time.Duration) error {
	rt := r.pl.Platform().Runtime()
	const chunk = time.Second
	for d > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := d
		if step > chunk {
			step = chunk
		}
		rt.Sleep(step)
		d -= step
	}
	return ctx.Err()
}

// Step executes one reconcile pass: probe, re-map, re-plan, diff,
// repair. It records and returns the round. When the pipeline carries a
// telemetry registry, the pass is traced as a "round" span with
// children for each stage, and the round counters land on the registry.
func (r *Reconciler) Step(ctx context.Context) Round {
	rt := r.pl.Platform().Runtime()
	tele := r.pl.Telemetry()
	round := Round{Started: rt.Now()}
	sp := tele.StartSpan("reconcile", "round")
	defer func() {
		tele.Counter("reconcile", "rounds", nil).Inc()
		if round.Err != nil {
			tele.Counter("reconcile", "transient_errors", nil).Inc()
		}
		tele.Histogram("reconcile", "round_sec", nil).ObserveDuration(rt.Now() - round.Started)
		sp.End()
	}()

	ps := sp.Child("probe")
	live, dead, runs := r.liveRuns()
	ps.End()
	round.Live, round.Dead = live, dead
	tele.Gauge("reconcile", "dead_hosts", nil).Set(float64(len(dead)))
	probedAt := rt.Now()
	if len(runs) == 0 {
		round.Err = fmt.Errorf("reconcile: no mapping run has a live anchor")
		return r.record(round)
	}

	ms := sp.Child("remap")
	m, err := r.pl.Map(ctx, runs...)
	ms.End()
	if err != nil {
		round.Err = fmt.Errorf("reconcile: remap: %w", err)
		return r.record(round)
	}
	rs := sp.Child("replan")
	pr, err := r.pl.Plan(m)
	rs.End()
	if err != nil {
		round.Err = fmt.Errorf("reconcile: replan: %w", err)
		return r.record(round)
	}
	round.Validation = pr.Validation
	ds := sp.Child("diff")
	round.Diff = deploy.DiffPlans(r.dep.Plan, pr.Plan)
	ds.End()
	if round.Diff.Empty() {
		return r.record(round)
	}
	// Liveness-driven drift (a monitored host gone dead or unreachable)
	// was already known at the probe, before the costly re-map; purely
	// structural drift (a rejoin confirmed mappable, an effective-view
	// change) is only established once the fresh plan exists.
	if len(dead) > 0 && len(round.Diff.HostsRemoved) > 0 {
		round.DetectedAt = probedAt
	} else {
		round.DetectedAt = rt.Now()
	}
	sp.Annotate("dead", fmt.Sprint(len(dead)))
	tele.Counter("reconcile", "drifts", nil).Inc()
	r.pl.Observe(core.PhaseReconcile, "drift detected (%d dead): %s",
		len(dead), strings.TrimSpace(round.Diff.String()))

	// ApplyDelta advances r.dep.Plan/Resolve in place; the pre-repair
	// view is what the anti-entropy step below needs to know which
	// primaries died and where their replicas lived.
	oldPlan, oldResolve := r.dep.Plan, r.dep.Resolve
	as := sp.Child("apply_delta")
	delta, err := r.dep.ApplyDelta(ctx, pr.Plan, m.Resolve)
	as.End()
	round.Delta = delta
	if err != nil {
		round.Err = fmt.Errorf("reconcile: %w", err)
		return r.record(round)
	}
	bs := sp.Child("backfill")
	adopted, backfilled := r.repairReplication(oldPlan, oldResolve, pr.Plan, m.Resolve)
	bs.End()
	if adopted > 0 {
		tele.Counter("reconcile", "replica_repairs", nil).Add(int64(adopted))
		r.pl.Observe(core.PhaseReconcile, "anti-entropy: adopted %d series, backfilled %d samples from survivors",
			adopted, backfilled)
	}
	round.RepairedAt = rt.Now()
	tele.Counter("reconcile", "repairs", nil).Inc()
	tele.Histogram("reconcile", "repair_sec", nil).ObserveDuration(round.RepairedAt - round.Started)
	r.pl.Observe(core.PhaseReconcile, "repaired in %v: %s",
		round.RepairedAt-round.Started, delta)
	return r.record(round)
}

// repairReplication re-establishes the replication factor after a
// structural repair: for every memory primary the old plan ran that the
// new plan no longer does (machine dead or demoted), the memory server
// now covering its hosts is told to adopt the dead primary's series,
// backfilling the retained windows from a surviving replica
// (anti-entropy) and re-fanning them out to its own fresh replica set.
// No sensor repopulation is involved: the survivor's copy alone
// restores the retained window. Returns series adopted and samples
// backfilled across all repairs.
func (r *Reconciler) repairReplication(oldPlan *deploy.Plan, oldResolve map[string]string, newPlan *deploy.Plan, newResolve map[string]string) (adopted int, backfilled int64) {
	if oldPlan.ReplicationFactor == 0 || len(oldPlan.Replicas) == 0 {
		return 0, 0
	}
	master := r.dep.Agents[newPlan.Master]
	if master == nil {
		return 0, 0
	}
	newHosts := map[string]bool{}
	for _, h := range newPlan.Hosts {
		newHosts[h] = true
	}
	newMems := map[string]bool{}
	for _, m := range newPlan.MemoryServers {
		newMems[m] = true
	}
	for _, dead := range oldPlan.MemoryServers {
		if newHosts[dead] && newMems[dead] {
			// Still a primary: an in-place rebuild kept its image, a
			// survivor never crashed.
			continue
		}
		deadNode := oldResolve[dead]
		if deadNode == "" {
			continue
		}
		// The adopter is the new-plan memory server now covering the most
		// hosts the dead primary used to serve (ties: lexicographic).
		votes := map[string]int{}
		for h, m := range oldPlan.MemoryOf {
			if m != dead {
				continue
			}
			if nm, ok := newPlan.MemoryOf[h]; ok {
				votes[nm]++
			}
		}
		adopter := ""
		for nm, n := range votes {
			if adopter == "" || n > votes[adopter] || (n == votes[adopter] && nm < adopter) {
				adopter = nm
			}
		}
		if adopter == "" {
			continue // nobody inherited its hosts
		}
		// The survivor holding the dead primary's windows: the adopter
		// itself when it was in the replica set (local gather, no extra
		// hop), else the first replica still alive.
		survivor := ""
		for _, rep := range oldPlan.Replicas[dead] {
			if rep == adopter {
				survivor = rep
				break
			}
			if survivor == "" && newHosts[rep] {
				survivor = rep
			}
		}
		if survivor == "" {
			continue // no surviving copy: the window is gone
		}
		adopterNode, survivorNode := newResolve[adopter], newResolve[survivor]
		if adopterNode == "" || survivorNode == "" {
			continue
		}
		reply, err := master.Station().Call(adopterNode, proto.Message{
			Type: proto.MsgReplRepair, Version: proto.V3,
			Reg: proto.Registration{Name: deadNode, Host: survivorNode},
		}, time.Minute)
		if err != nil {
			r.pl.Observe(core.PhaseReconcile, "anti-entropy: adopter %s: %v", adopter, err)
			continue
		}
		adopted += reply.Count
		backfilled += reply.Total
	}
	return adopted, backfilled
}

func (r *Reconciler) record(round Round) Round {
	r.mu.Lock()
	round.Index = len(r.rounds)
	r.rounds = append(r.rounds, round)
	r.mu.Unlock()
	return round
}

// liveRuns probes every candidate and derives this round's mapping
// runs: per run, the live subset anchored at a live master (the
// original master when it survived, the first live member otherwise —
// which also re-homes the name server and forecaster when the master
// machine itself died).
func (r *Reconciler) liveRuns() (live, dead []string, runs []core.MapRun) {
	plat := r.pl.Platform()
	prober := plat.Prober()

	seenLive := map[string]bool{}
	seenDead := map[string]bool{}
	for _, tmpl := range r.cfg.Runs {
		// Anchor: the template's master if it is up, else the first
		// up member. Reachability is then probed from the anchor, so a
		// partitioned host counts as dead for this run.
		anchor := ""
		for _, id := range candidateOrder(tmpl) {
			if platform.Alive(plat, id) {
				anchor = id
				break
			}
		}
		if anchor == "" {
			for _, id := range tmpl.Hosts {
				seenDead[id] = true
			}
			continue
		}
		run := tmpl
		run.Master = anchor
		run.Hosts = []string{anchor}
		seenLive[anchor] = true
		for _, id := range tmpl.Hosts {
			if id == anchor {
				continue
			}
			ok := platform.Alive(plat, id)
			if ok {
				if _, err := prober.Latency(anchor, id, 4); err != nil {
					ok = false
				}
			}
			if ok {
				run.Hosts = append(run.Hosts, id)
				seenLive[id] = true
			} else {
				seenDead[id] = true
			}
		}
		if len(run.Hosts) >= 2 {
			runs = append(runs, run)
		}
	}
	for _, tmpl := range r.cfg.Runs {
		for _, id := range candidateOrder(tmpl) {
			switch {
			case seenLive[id] && !contains(live, id):
				live = append(live, id)
			case !seenLive[id] && seenDead[id] && !contains(dead, id):
				dead = append(dead, id)
			}
		}
	}
	return live, dead, runs
}

// candidateOrder lists a template's hosts with the master first.
func candidateOrder(run core.MapRun) []string {
	out := []string{run.Master}
	for _, id := range run.Hosts {
		if id != run.Master {
			out = append(out, id)
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// RecoveryReport correlates injected faults with the rounds that
// repaired them: each injection is matched to the first successful
// repair round between it and the next injection. Injections answered
// by no repair in their window (still converging, or — like a pure
// link degradation — requiring no structural change) count as
// unrepaired.
func (r *Reconciler) RecoveryReport(injected []simnet.InjectedFault) metrics.RecoveryReport {
	rounds := r.Rounds()
	var repairs []metrics.Repair
	unrepaired := 0
	for i, inj := range injected {
		windowEnd := time.Duration(1<<62 - 1)
		if i+1 < len(injected) {
			windowEnd = injected[i+1].At
		}
		matched := false
		for _, rd := range rounds {
			if rd.Started < inj.At || rd.Started >= windowEnd {
				continue
			}
			if rd.Repaired() {
				repairs = append(repairs, metrics.Repair{
					Fault:      inj.Event.String(),
					InjectedAt: inj.At,
					DetectedAt: rd.DetectedAt,
					RepairedAt: rd.RepairedAt,
					Redeployed: rd.Delta.Redeployed(),
					Total:      rd.Delta.Redeployed() + len(rd.Delta.Kept),
				})
				matched = true
				break
			}
		}
		if !matched {
			unrepaired++
		}
	}
	return metrics.SummarizeRecovery(repairs, unrepaired)
}

// RepairWindows extracts the [injected, repaired] spans of a recovery
// report, the windows ProbeDisruption evaluates.
func RepairWindows(rep metrics.RecoveryReport) [][2]time.Duration {
	var out [][2]time.Duration
	for _, rp := range rep.Repairs {
		out = append(out, [2]time.Duration{rp.InjectedAt, rp.RepairedAt})
	}
	return out
}
