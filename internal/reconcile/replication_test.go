package reconcile

import (
	"context"
	"testing"
	"time"

	"nwsenv/internal/core"
	"nwsenv/internal/nws/memory"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/platform"
	"nwsenv/internal/simnet"
	"nwsenv/internal/telemetry"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

// deployGrid maps, plans and applies a per-site-domain synthetic grid
// with k-replica memory replication, so the plan has non-master memory
// primaries to kill.
func deployGrid(t *testing.T, seed int64, sites, switches, perSwitch, k int, extra ...core.Option) (*env, *telemetry.Registry) {
	t.Helper()
	tp, _ := topo.SyntheticGrid(topo.GridConfig{
		Sites: sites, SwitchesPerSite: switches, HostsPerSwitch: perSwitch,
		SiteDomains: true, Seed: seed,
	})
	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)
	tr := proto.NewSimTransport(net)
	plat := platform.NewSimPlatform(net, tr)
	reg := telemetry.New(sim.Now)
	opts := []core.Option{core.WithTokenGap(time.Second),
		core.WithReplication(k), core.WithTelemetry(reg)}
	opts = append(opts, extra...)
	pl := core.NewPipeline(plat, opts...)

	var hosts []string
	for _, h := range tp.HostIDs() {
		if h != tp.ExternalTarget {
			hosts = append(hosts, h)
		}
	}
	run := core.MapRun{Master: hosts[0], Hosts: hosts}

	var out *core.Outcome
	var err error
	done := false
	sim.Go("deploy", func() {
		out, err = pl.Deploy(context.Background(), run)
		done = true
	})
	for at := sim.Now() + time.Minute; !done && at <= 24*time.Hour; at += time.Minute {
		if e := sim.RunUntil(at); e != nil {
			t.Fatal(e)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("deployment did not finish")
	}
	return &env{sim: sim, net: net, plat: plat, pl: pl, out: out, run: run, hosts: hosts}, reg
}

// inSim runs fn as a simulation process and steps the clock until it
// returns.
func inSim(t *testing.T, sim *vclock.Sim, name string, fn func()) {
	t.Helper()
	done := false
	sim.Go(name, func() { fn(); done = true })
	deadline := sim.Now() + time.Hour
	for at := sim.Now() + time.Second; !done && at <= deadline; at += time.Second {
		if err := sim.RunUntil(at); err != nil {
			t.Fatal(err)
		}
	}
	if !done {
		t.Fatal(name + " did not finish")
	}
}

// TestReplicationBackfillRestoresWindow pins the k=1 recovery
// contract: after a memory primary crashes for good, anti-entropy
// backfill alone restores the retained window — zero sensor
// repopulation. The pinned series is user-stored, so no sensor can
// ever regenerate a single sample of it; every sample retrieved after
// the repair was necessarily carried over from the replica.
func TestReplicationBackfillRestoresWindow(t *testing.T) {
	e, reg := deployGrid(t, 11, 3, 2, 2, 1)
	dep := e.out.Deployment

	// A non-master memory primary to kill.
	var victimName string
	for _, m := range e.out.Plan.MemoryServers {
		if m != e.out.Plan.Master {
			victimName = m
			break
		}
	}
	if victimName == "" {
		t.Fatalf("no non-master memory primary in plan (memories %v)", e.out.Plan.MemoryServers)
	}
	victim := e.out.Resolve[victimName]
	if len(e.out.Plan.Replicas[victimName]) == 0 {
		t.Fatalf("no replicas solved for %s: %v", victimName, e.out.Plan.Replicas)
	}

	// Pin a user series on the victim: 24 samples the sensors cannot
	// regenerate.
	const series = "pinned-window"
	const n = 24
	master := dep.Agents[e.out.Plan.Master]
	inSim(t, e.sim, "seed-pinned", func() {
		mc := memory.NewClient(master.Station(), victim)
		for i := 1; i <= n; i++ {
			if err := mc.Store(series, proto.Sample{At: time.Duration(i) * time.Second, Value: float64(i)}); err != nil {
				t.Errorf("store %d: %v", i, err)
				return
			}
		}
	})
	// Let the asynchronous fan-out drain so the replica holds the full
	// window before the primary dies.
	advance(t, e.sim, e.sim.Now()+time.Minute)

	// Kill the primary for good (no heal: a crash loses the local
	// window) and let the reconcile loop cut it out and backfill.
	base := e.sim.Now()
	rec := e.watch(context.Background(), 2*time.Minute)
	simnet.CrashScenario(victim, base+time.Minute, 0).Schedule(e.net)
	advance(t, e.sim, base+10*time.Minute)

	cur := rec.Deployment()
	if containsStr(cur.Plan.Hosts, victimName) {
		t.Fatalf("crashed primary %s still in live plan %v", victimName, cur.Plan.Hosts)
	}

	// The retained window must come back whole through the query plane,
	// though every sensor on the platform has never seen this series.
	var got []proto.Sample
	inSim(t, e.sim, "refetch", func() {
		qc := cur.QueryClient(cur.Agents[cur.Plan.Master].Station())
		res := qc.FetchMany([]proto.SeriesRequest{{Series: series, Count: n + 8}})
		if res[0].Err != nil {
			t.Errorf("fetch after repair: %v", res[0].Err)
			return
		}
		got = res[0].Samples
	})
	if len(got) != n {
		t.Fatalf("restored window has %d samples, want %d", len(got), n)
	}
	for i, s := range got {
		if s.Value != float64(i+1) {
			t.Fatalf("restored sample %d = %g, want %g", i, s.Value, float64(i+1))
		}
	}

	// And the telemetry must attribute the restoration to backfill.
	flat := reg.Snapshot().Flatten()
	if flat["replica/backfill_samples"] < n {
		t.Fatalf("replica/backfill_samples = %g, want >= %d", flat["replica/backfill_samples"], n)
	}
}
