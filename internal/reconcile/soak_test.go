package reconcile

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"nwsenv/internal/core"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/query"
	"nwsenv/internal/simnet"
)

// TestSoakChurnResolutionPlane is the resolution-plane soak: seeded
// crash/restore churn of the memory-server hosts and the forecaster's
// host (the master — its crash re-homes NS, forecaster and gateway)
// under the reconcile loop, asserting that
//
//   - forecasts keep flowing through the unified query plane between
//     repairs and after convergence: every probe round builds a fresh
//     query.Client against the *current* deployment and must get at
//     least one prediction; the final steady-state round must answer
//     every probed pair; and
//   - no resolver process leaks: after the loop is cancelled and the
//     deployment stopped, every process — query fan-out workers,
//     singleflight flights, and the KeepRegistered refresh loops of
//     memory servers, forecaster and gateway (which notice teardown on
//     their next tick) — drains to zero on the virtual-clock scheduler.
//
// CI runs it under the race detector at the default (short) horizon of
// one churn pass per victim; NWSENV_SOAK_PASSES extends the churn for
// longer local soaks.
func TestSoakChurnResolutionPlane(t *testing.T) {
	passes := 1
	if v, err := strconv.Atoi(os.Getenv("NWSENV_SOAK_PASSES")); err == nil && v > 0 {
		passes = v
	}

	e := deployLAN(t, 13, 3, 3)
	base := e.sim.Now()
	plan := e.out.Plan

	// Victims: up to two non-master memory-server hosts, then the
	// forecaster's host (re-homing leg). Node IDs for the fault injector.
	var victims []string
	for _, m := range plan.MemoryServers {
		if m != plan.Master && len(victims) < 2 {
			victims = append(victims, e.out.Resolve[m])
		}
	}
	victims = append(victims, e.out.Resolve[plan.Forecaster])
	onePass := append([]string(nil), victims...)
	for p := 1; p < passes; p++ {
		victims = append(victims, onePass...)
	}

	const (
		churnStart    = 4 * time.Minute
		churnInterval = 8 * time.Minute
		churnDownFor  = 3 * time.Minute
	)
	scen := simnet.ChurnScenario(victims, base+churnStart, churnInterval, churnDownFor)
	scenRun := scen.Schedule(e.net)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := New(e.pl, e.out.Deployment, Config{Runs: []core.MapRun{e.run}, Interval: 2 * time.Minute})
	recDone := false
	e.sim.Go("reconcile", func() { rec.Run(ctx); recDone = true })

	// probe forecasts up to four measured pairs of the current plan
	// through a fresh query client on the current master's station,
	// returning how many answered.
	probe := func(label string) (got, want int) {
		dep := rec.Deployment()
		st := dep.Agents[dep.Plan.Master].Station()
		pairs := dep.Plan.MeasuredPairs()
		if len(pairs) > 4 {
			pairs = pairs[:4]
		}
		var reqs []proto.SeriesRequest
		for _, p := range pairs {
			reqs = append(reqs, proto.SeriesRequest{Series: sensor.LatencySeries(dep.Resolve[p[0]], dep.Resolve[p[1]])})
		}
		done := false
		e.sim.Go("probe:"+label, func() {
			defer func() { done = true }()
			qc := dep.QueryClient(st)
			for _, r := range qc.ForecastMany(reqs) {
				// Degraded predictions (replica-served history) count as
				// answered: the advisory is staleness, not failure.
				if (r.Err == nil || errors.Is(r.Err, query.ErrDegraded)) && r.Prediction.N > 0 {
					got++
				}
			}
		})
		deadline := e.sim.Now() + 5*time.Minute
		for at := e.sim.Now() + 10*time.Second; !done && at <= deadline; at += 10 * time.Second {
			advance(t, e.sim, at)
		}
		if !done {
			t.Fatalf("probe %s wedged", label)
		}
		return got, len(reqs)
	}

	// Warm-up: the cliques have measured, the plane must answer.
	advance(t, e.sim, base+3*time.Minute)
	if got, want := probe("warmup"); got == 0 {
		t.Fatalf("no forecasts flowing before churn (0/%d)", want)
	}

	// One probe after each victim's crash+restore cycle has been
	// repaired and folded back (crash at +i*interval, restore +3m,
	// reconcile interval 2m: by +6m the plan is whole again).
	for i := range victims {
		at := base + churnStart + time.Duration(i)*churnInterval + 6*time.Minute
		advance(t, e.sim, at)
		got, want := probe(fmt.Sprintf("churn-%d", i))
		if got == 0 {
			t.Fatalf("forecasts stopped flowing after churn round %d (0/%d)", i, want)
		}
	}

	// Steady state: every probed pair must answer.
	advance(t, e.sim, e.sim.Now()+4*time.Minute)
	if got, want := probe("final"); got < want {
		t.Fatalf("steady-state forecasts incomplete: %d/%d", got, want)
	}
	if inj := len(scenRun.Injected()); inj != 2*len(victims) {
		t.Fatalf("scenario injected %d events, want %d", inj, 2*len(victims))
	}

	// Teardown + the goroutine-count guard: cancel the loop, stop the
	// current deployment, then advance past a full registration-refresh
	// tick so every KeepRegistered loop wakes, sees ErrClosed and exits.
	cancel()
	advance(t, e.sim, e.sim.Now()+3*time.Minute)
	if !recDone {
		t.Fatal("reconcile loop did not exit after cancel")
	}
	rec.Deployment().Stop()
	advance(t, e.sim, e.sim.Now()+12*time.Minute)
	if n := e.sim.Processes(); n != 0 {
		t.Fatalf("%d processes still alive after Stop: resolver/refresh leak", n)
	}
}

// TestSoakReplicatedPrimaryKill is the replication soak: on a
// three-site grid with k=1 replication, every round crashes the
// primary of a hot series — one that the probe is actively
// forecasting — and asserts the hot series come back WHILE the
// primary is still down, i.e. without waiting for the directory TTL
// or a full reconcile redeploy. The very first forecast after a crash
// may eat one timeout tick (the fetch that discovers the dead primary
// is also the one that rebinds the cache onto the replica — the same
// ≤1-tick answer deficit the replication scenario gates on), so each
// kill phase retries until the answers flow again and requires that
// to happen inside the down window. The failover counter must rise
// across the test, pinning that replicas — not just repair
// re-homing — carried queries through the outages. NWSENV_SOAK_PASSES
// extends the number of kill rounds for longer local soaks; CI runs
// the short default under the race detector.
func TestSoakReplicatedPrimaryKill(t *testing.T) {
	passes := 1
	if v, err := strconv.Atoi(os.Getenv("NWSENV_SOAK_PASSES")); err == nil && v > 0 {
		passes = v
	}
	rounds := passes * 2

	e, reg := deployGrid(t, 17, 3, 2, 2, 1)
	base := e.sim.Now()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := e.watch(ctx, 2*time.Minute)

	// probe forecasts the given series through a fresh query client on
	// the current master's station.
	probe := func(label string, series []string) (got, want int) {
		dep := rec.Deployment()
		st := dep.Agents[dep.Plan.Master].Station()
		var reqs []proto.SeriesRequest
		for _, s := range series {
			reqs = append(reqs, proto.SeriesRequest{Series: s})
		}
		done := false
		e.sim.Go("probe:"+label, func() {
			defer func() { done = true }()
			qc := dep.QueryClient(st)
			for _, r := range qc.ForecastMany(reqs) {
				if (r.Err == nil || errors.Is(r.Err, query.ErrDegraded)) && r.Prediction.N > 0 {
					got++
				} else {
					t.Logf("probe %s: %s: err=%v n=%d", label, r.Series, r.Err, r.Prediction.N)
				}
			}
		})
		deadline := e.sim.Now() + 5*time.Minute
		for at := e.sim.Now() + 10*time.Second; !done && at <= deadline; at += 10 * time.Second {
			advance(t, e.sim, at)
		}
		if !done {
			t.Fatalf("probe %s wedged", label)
		}
		return got, len(reqs)
	}

	advance(t, e.sim, base+3*time.Minute)
	for round := 0; round < rounds; round++ {
		dep := rec.Deployment()
		// The hot series of this round: measured pairs homed on the
		// first non-master memory primary of the current plan.
		var victimName string
		var hot []string
		for _, p := range dep.Plan.MeasuredPairs() {
			owner := dep.Plan.MemoryOf[p[0]]
			if owner == dep.Plan.Master {
				continue
			}
			if victimName == "" {
				victimName = owner
			}
			if owner == victimName && len(hot) < 3 {
				hot = append(hot, sensor.LatencySeries(dep.Resolve[p[0]], dep.Resolve[p[1]]))
			}
		}
		if victimName == "" || len(hot) == 0 {
			t.Fatalf("round %d: no hot series on a non-master memory primary", round)
		}
		t.Logf("round %d: victim=%s replicas=%v hot=%v", round, victimName, dep.Plan.Replicas[victimName], hot)
		if got, want := probe(fmt.Sprintf("warm-%d", round), hot); got < want {
			t.Fatalf("round %d: hot series dark before the kill: %d/%d", round, got, want)
		}

		// Kill the hot primary and keep probing: the answers must come
		// back while it is still down.
		now := e.sim.Now()
		const downFor = 5 * time.Minute
		healAt := now + time.Minute + downFor
		simnet.CrashScenario(dep.Resolve[victimName], now+time.Minute, downFor).Schedule(e.net)
		advance(t, e.sim, now+90*time.Second)
		recovered := false
		for try := 0; e.sim.Now() < healAt-time.Minute; try++ {
			if got, want := probe(fmt.Sprintf("kill-%d-%d", round, try), hot); got == want {
				recovered = true
				break
			}
		}
		if !recovered {
			t.Fatalf("round %d: hot series still dark with primary %s down (until t=%v, now t=%v)",
				round, victimName, healAt, e.sim.Now())
		}
		// Let the crash be repaired and the healed host folded back.
		advance(t, e.sim, now+14*time.Minute)
	}

	// Steady state: converged plan, and the outages were carried by
	// replica failover, not only by repair re-homing.
	last := rec.Rounds()[len(rec.Rounds())-1]
	if last.Err != nil || last.Drifted() {
		t.Fatalf("loop did not converge after %d kill rounds: %+v", rounds, last)
	}
	flat := reg.Snapshot().Flatten()
	if flat["replica/failovers_total"] < 1 {
		t.Fatalf("replica/failovers_total = %g after %d kill rounds, want >= 1", flat["replica/failovers_total"], rounds)
	}
	if flat["replica/writes_total"] < 1 {
		t.Fatalf("replica/writes_total = %g: no write fan-out during the soak", flat["replica/writes_total"])
	}

	// Teardown + the process-count guard.
	cancel()
	advance(t, e.sim, e.sim.Now()+3*time.Minute)
	rec.Deployment().Stop()
	advance(t, e.sim, e.sim.Now()+12*time.Minute)
	if n := e.sim.Processes(); n != 0 {
		t.Fatalf("%d processes still alive after Stop: resolver/refresh leak", n)
	}
}
