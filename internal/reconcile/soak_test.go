package reconcile

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"nwsenv/internal/core"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/simnet"
)

// TestSoakChurnResolutionPlane is the resolution-plane soak: seeded
// crash/restore churn of the memory-server hosts and the forecaster's
// host (the master — its crash re-homes NS, forecaster and gateway)
// under the reconcile loop, asserting that
//
//   - forecasts keep flowing through the unified query plane between
//     repairs and after convergence: every probe round builds a fresh
//     query.Client against the *current* deployment and must get at
//     least one prediction; the final steady-state round must answer
//     every probed pair; and
//   - no resolver process leaks: after the loop is cancelled and the
//     deployment stopped, every process — query fan-out workers,
//     singleflight flights, and the KeepRegistered refresh loops of
//     memory servers, forecaster and gateway (which notice teardown on
//     their next tick) — drains to zero on the virtual-clock scheduler.
//
// CI runs it under the race detector at the default (short) horizon of
// one churn pass per victim; NWSENV_SOAK_PASSES extends the churn for
// longer local soaks.
func TestSoakChurnResolutionPlane(t *testing.T) {
	passes := 1
	if v, err := strconv.Atoi(os.Getenv("NWSENV_SOAK_PASSES")); err == nil && v > 0 {
		passes = v
	}

	e := deployLAN(t, 13, 3, 3)
	base := e.sim.Now()
	plan := e.out.Plan

	// Victims: up to two non-master memory-server hosts, then the
	// forecaster's host (re-homing leg). Node IDs for the fault injector.
	var victims []string
	for _, m := range plan.MemoryServers {
		if m != plan.Master && len(victims) < 2 {
			victims = append(victims, e.out.Resolve[m])
		}
	}
	victims = append(victims, e.out.Resolve[plan.Forecaster])
	onePass := append([]string(nil), victims...)
	for p := 1; p < passes; p++ {
		victims = append(victims, onePass...)
	}

	const (
		churnStart    = 4 * time.Minute
		churnInterval = 8 * time.Minute
		churnDownFor  = 3 * time.Minute
	)
	scen := simnet.ChurnScenario(victims, base+churnStart, churnInterval, churnDownFor)
	scenRun := scen.Schedule(e.net)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := New(e.pl, e.out.Deployment, Config{Runs: []core.MapRun{e.run}, Interval: 2 * time.Minute})
	recDone := false
	e.sim.Go("reconcile", func() { rec.Run(ctx); recDone = true })

	// probe forecasts up to four measured pairs of the current plan
	// through a fresh query client on the current master's station,
	// returning how many answered.
	probe := func(label string) (got, want int) {
		dep := rec.Deployment()
		st := dep.Agents[dep.Plan.Master].Station()
		pairs := dep.Plan.MeasuredPairs()
		if len(pairs) > 4 {
			pairs = pairs[:4]
		}
		var reqs []proto.SeriesRequest
		for _, p := range pairs {
			reqs = append(reqs, proto.SeriesRequest{Series: sensor.LatencySeries(dep.Resolve[p[0]], dep.Resolve[p[1]])})
		}
		done := false
		e.sim.Go("probe:"+label, func() {
			defer func() { done = true }()
			qc := dep.QueryClient(st)
			for _, r := range qc.ForecastMany(reqs) {
				if r.Err == nil && r.Prediction.N > 0 {
					got++
				}
			}
		})
		deadline := e.sim.Now() + 5*time.Minute
		for at := e.sim.Now() + 10*time.Second; !done && at <= deadline; at += 10 * time.Second {
			advance(t, e.sim, at)
		}
		if !done {
			t.Fatalf("probe %s wedged", label)
		}
		return got, len(reqs)
	}

	// Warm-up: the cliques have measured, the plane must answer.
	advance(t, e.sim, base+3*time.Minute)
	if got, want := probe("warmup"); got == 0 {
		t.Fatalf("no forecasts flowing before churn (0/%d)", want)
	}

	// One probe after each victim's crash+restore cycle has been
	// repaired and folded back (crash at +i*interval, restore +3m,
	// reconcile interval 2m: by +6m the plan is whole again).
	for i := range victims {
		at := base + churnStart + time.Duration(i)*churnInterval + 6*time.Minute
		advance(t, e.sim, at)
		got, want := probe(fmt.Sprintf("churn-%d", i))
		if got == 0 {
			t.Fatalf("forecasts stopped flowing after churn round %d (0/%d)", i, want)
		}
	}

	// Steady state: every probed pair must answer.
	advance(t, e.sim, e.sim.Now()+4*time.Minute)
	if got, want := probe("final"); got < want {
		t.Fatalf("steady-state forecasts incomplete: %d/%d", got, want)
	}
	if inj := len(scenRun.Injected()); inj != 2*len(victims) {
		t.Fatalf("scenario injected %d events, want %d", inj, 2*len(victims))
	}

	// Teardown + the goroutine-count guard: cancel the loop, stop the
	// current deployment, then advance past a full registration-refresh
	// tick so every KeepRegistered loop wakes, sees ErrClosed and exits.
	cancel()
	advance(t, e.sim, e.sim.Now()+3*time.Minute)
	if !recDone {
		t.Fatal("reconcile loop did not exit after cancel")
	}
	rec.Deployment().Stop()
	advance(t, e.sim, e.sim.Now()+12*time.Minute)
	if n := e.sim.Processes(); n != 0 {
		t.Fatalf("%d processes still alive after Stop: resolver/refresh leak", n)
	}
}
