package reconcile

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"nwsenv/internal/core"
	"nwsenv/internal/deploy"
	"nwsenv/internal/metrics"
	"nwsenv/internal/nws/gateway"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/platform"
	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

// env is a deployed random LAN with a reconciler-ready pipeline.
type env struct {
	sim   *vclock.Sim
	net   *simnet.Network
	plat  *platform.SimPlatform
	pl    *core.Pipeline
	out   *core.Outcome
	run   core.MapRun
	hosts []string // candidate node IDs (external target excluded)
}

// deployLAN maps, plans and applies a seeded random LAN and returns the
// running system with the virtual clock just past the apply.
func deployLAN(t *testing.T, seed int64, subnets, perSubnet int) *env {
	t.Helper()
	tp, _ := topo.RandomLAN(seed, subnets, perSubnet)
	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)
	tr := proto.NewSimTransport(net)
	plat := platform.NewSimPlatform(net, tr)
	pl := core.NewPipeline(plat, core.WithTokenGap(time.Second))

	var hosts []string
	for _, h := range tp.HostIDs() {
		if h != tp.ExternalTarget {
			hosts = append(hosts, h)
		}
	}
	run := core.MapRun{Master: hosts[0], Hosts: hosts}

	var out *core.Outcome
	var err error
	done := false
	sim.Go("deploy", func() {
		out, err = pl.Deploy(context.Background(), run)
		done = true
	})
	for at := sim.Now() + time.Minute; !done && at <= 24*time.Hour; at += time.Minute {
		if e := sim.RunUntil(at); e != nil {
			t.Fatal(e)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("deployment did not finish")
	}
	return &env{sim: sim, net: net, plat: plat, pl: pl, out: out, run: run, hosts: hosts}
}

// watch starts a reconcile loop with the given interval and returns it.
func (e *env) watch(ctx context.Context, interval time.Duration) *Reconciler {
	rec := New(e.pl, e.out.Deployment, Config{
		Runs:     []core.MapRun{e.run},
		Interval: interval,
	})
	e.sim.Go("reconcile", func() { rec.Run(ctx) })
	return rec
}

// nameOf reverse-resolves a node ID to its canonical machine name.
func (e *env) nameOf(t *testing.T, id string) string {
	t.Helper()
	for name, node := range e.out.Resolve {
		if node == id {
			return name
		}
	}
	t.Fatalf("no canonical name for node %s", id)
	return ""
}

func advance(t *testing.T, sim *vclock.Sim, until time.Duration) {
	t.Helper()
	if err := sim.RunUntil(until); err != nil {
		t.Fatal(err)
	}
}

// TestReconcileCrashAndRejoin: a crashed sensor host is detected, cut
// out of the deployment incrementally, and folded back in after it
// returns — without ever redeploying the full system.
func TestReconcileCrashAndRejoin(t *testing.T) {
	e := deployLAN(t, 7, 3, 3)
	base := e.sim.Now()
	victim := e.hosts[len(e.hosts)-1] // last subnet's last host: never the master
	victimName := e.nameOf(t, victim)
	total := len(e.out.Plan.Hosts)

	rec := e.watch(context.Background(), 2*time.Minute)
	scen := simnet.CrashScenario(victim, base+time.Minute, 14*time.Minute)
	scenRun := scen.Schedule(e.net)

	// Phase 1: crash at base+1m; give the loop a few rounds.
	advance(t, e.sim, base+10*time.Minute)
	dep := rec.Deployment()
	if containsStr(dep.Plan.Hosts, victimName) {
		t.Fatalf("crashed host %s still in live plan %v", victimName, dep.Plan.Hosts)
	}
	if v := deploy.ValidateConnectivity(dep.Plan); !v.Complete {
		t.Fatalf("repaired plan incomplete: %v", v.MissingPairs)
	}
	var repaired *Round
	for _, rd := range rec.Rounds() {
		if rd.Repaired() {
			rd := rd
			repaired = &rd
			break
		}
	}
	if repaired == nil {
		t.Fatalf("no repair round after crash; rounds: %+v", rec.Rounds())
	}
	if got := repaired.Delta.Redeployed(); got >= total {
		t.Fatalf("crash repair redeployed %d of %d components: not incremental", got, total)
	}
	if len(repaired.Delta.Kept) == 0 {
		t.Fatal("crash repair kept no agents")
	}
	if !containsStr(repaired.Delta.Stopped, victimName) {
		t.Fatalf("repair did not stop the victim: %s", repaired.Delta)
	}

	// Phase 2: the host rejoins at base+15m; the loop folds it back.
	advance(t, e.sim, base+25*time.Minute)
	dep = rec.Deployment()
	if !containsStr(dep.Plan.Hosts, victimName) {
		t.Fatalf("restored host %s missing from plan %v", victimName, dep.Plan.Hosts)
	}
	if v := deploy.ValidateConnectivity(dep.Plan); !v.Complete {
		t.Fatalf("rejoin plan incomplete: %v", v.MissingPairs)
	}
	last := rec.Rounds()[len(rec.Rounds())-1]
	if last.Err != nil || last.Drifted() {
		t.Fatalf("loop did not converge after rejoin: %+v", last)
	}
	if len(scenRun.Injected()) != 2 {
		t.Fatalf("scenario injected %d events", len(scenRun.Injected()))
	}
}

// TestReconcileMasterFailover: when the machine hosting the name server
// and forecaster dies, the loop re-homes them on a surviving host.
func TestReconcileMasterFailover(t *testing.T) {
	e := deployLAN(t, 11, 2, 3)
	base := e.sim.Now()
	master := e.out.Plan.Master
	masterID := e.out.Resolve[master]
	if masterID == "" {
		t.Fatalf("cannot resolve master %s", master)
	}

	rec := e.watch(context.Background(), 2*time.Minute)
	simnet.CrashScenario(masterID, base+time.Minute, 0).Schedule(e.net)

	advance(t, e.sim, base+12*time.Minute)
	dep := rec.Deployment()
	if dep.Plan.NameServer == master {
		t.Fatalf("name server still on dead master %s", master)
	}
	if containsStr(dep.Plan.Hosts, master) {
		t.Fatalf("dead master %s still monitored", master)
	}
	if v := deploy.ValidateConnectivity(dep.Plan); !v.Complete {
		t.Fatalf("failover plan incomplete: %v", v.MissingPairs)
	}
}

// TestReconcileGatewayRehomed: the query gateway rides the master — when
// its host dies, the reconcile loop re-homes it alongside the name
// server, the new gateway re-registers under kind "gateway", and an end
// user on a surviving host can still discover it and fetch live
// measurements through the query plane.
func TestReconcileGatewayRehomed(t *testing.T) {
	e := deployLAN(t, 11, 2, 3)
	base := e.sim.Now()
	master := e.out.Plan.Master
	masterID := e.out.Resolve[master]
	if e.out.Plan.Gateway != master {
		t.Fatalf("gateway planned on %q, want the master %q", e.out.Plan.Gateway, master)
	}

	rec := e.watch(context.Background(), 2*time.Minute)
	simnet.CrashScenario(masterID, base+time.Minute, 0).Schedule(e.net)

	advance(t, e.sim, base+12*time.Minute)
	dep := rec.Deployment()
	if dep.Plan.Gateway == master {
		t.Fatalf("gateway still on dead master %s", master)
	}
	if dep.Plan.Gateway != dep.Plan.Master {
		t.Fatalf("gateway %q re-homed away from the new master %q", dep.Plan.Gateway, dep.Plan.Master)
	}

	// Give the rebuilt cliques a few rounds to measure, then query.
	advance(t, e.sim, e.sim.Now()+5*time.Minute)
	nsID := dep.Resolve[dep.Plan.NameServer]
	gwID := dep.Resolve[dep.Plan.Gateway]
	pairs := dep.Plan.MeasuredPairs()
	if len(pairs) == 0 {
		t.Fatal("no measured pairs after failover")
	}
	src, dst := dep.Resolve[pairs[0][0]], dep.Resolve[pairs[0][1]]
	var qerr error
	var samples []proto.Sample
	done := false
	e.sim.Go("user", func() {
		defer func() { done = true }()
		st := dep.Agents[dep.Plan.Master].Station()
		reg, err := gateway.Discover(st, nsID)
		if err != nil {
			qerr = err
			return
		}
		if reg.Host != gwID {
			qerr = fmt.Errorf("discovered gateway on %s, want %s", reg.Host, gwID)
			return
		}
		gc := gateway.NewClient(st, reg.Host)
		samples, qerr = gc.Fetch(sensor.LatencySeries(src, dst), 1)
	})
	advance(t, e.sim, e.sim.Now()+2*time.Minute)
	if !done {
		t.Fatal("gateway query did not finish")
	}
	if qerr != nil {
		t.Fatalf("query through re-homed gateway: %v", qerr)
	}
	if len(samples) != 1 {
		t.Fatalf("expected 1 sample, got %d", len(samples))
	}
}

// TestReconcileMixedScenarioConverges is the acceptance case: a seeded
// mixed fault schedule (crash + partition via link cut + degradation,
// each self-healing) against the reconcile loop. The loop must end
// converged on a valid deployment, and no single repair may have torn
// down the whole system.
func TestReconcileMixedScenarioConverges(t *testing.T) {
	e := deployLAN(t, 42, 3, 3)
	base := e.sim.Now()

	// Victims: non-master hosts; links: their access segments (cutting
	// one partitions that host while it stays alive).
	var victims []string
	var links [][2]string
	for _, id := range e.hosts[1:] {
		victims = append(victims, id)
	}
	for _, id := range []string{e.hosts[2], e.hosts[4]} {
		for _, l := range e.net.Topology().Links() {
			if l.A == id {
				links = append(links, [2]string{l.A, l.B})
				break
			}
			if l.B == id {
				links = append(links, [2]string{l.B, l.A})
				break
			}
		}
	}
	if len(links) == 0 {
		t.Fatal("no candidate links")
	}

	scen := simnet.MixedScenario(42, victims, links,
		base+2*time.Minute, 8*time.Minute, 4*time.Minute, 3)
	scenRun := scen.Schedule(e.net)

	rec := e.watch(context.Background(), 2*time.Minute)
	end := base + 45*time.Minute
	advance(t, e.sim, end)

	// All faults injected and healed.
	injected := scenRun.Injected()
	if len(injected) != 6 {
		t.Fatalf("injected %d events, want 6 (3 faults + 3 heals): %+v", len(injected), injected)
	}

	// Converged: the last round saw no drift, no dead hosts, no error.
	rounds := rec.Rounds()
	if len(rounds) == 0 {
		t.Fatal("no reconcile rounds ran")
	}
	last := rounds[len(rounds)-1]
	if last.Err != nil {
		t.Fatalf("last round errored: %v", last.Err)
	}
	if last.Drifted() {
		t.Fatalf("last round still drifting: %s", last.Diff)
	}
	if len(last.Dead) != 0 {
		t.Fatalf("dead hosts at end: %v", last.Dead)
	}

	// The final deployment is valid and monitors every candidate again.
	dep := rec.Deployment()
	if v := deploy.ValidateConnectivity(dep.Plan); !v.Complete {
		t.Fatalf("final plan incomplete: %v", v.MissingPairs)
	}
	if len(dep.Plan.Hosts) != len(e.out.Plan.Hosts) {
		t.Fatalf("final plan monitors %d hosts, want %d", len(dep.Plan.Hosts), len(e.out.Plan.Hosts))
	}

	// Every repair was incremental: redeployed < total components.
	sawRepair := false
	for _, rd := range rounds {
		if !rd.Repaired() {
			continue
		}
		sawRepair = true
		totalComponents := rd.Delta.Redeployed() + len(rd.Delta.Kept)
		if rd.Delta.Redeployed() >= totalComponents {
			t.Fatalf("round %d redeployed %d of %d components: full teardown", rd.Index, rd.Delta.Redeployed(), totalComponents)
		}
	}
	if !sawRepair {
		t.Fatal("no repair rounds despite injected faults")
	}

	// Recovery metrics: detections and repairs are timed, and the worst
	// repair never touched the whole deployment.
	report := rec.RecoveryReport(injected)
	if len(report.Repairs) < 2 {
		t.Fatalf("recovery report has %d repairs:\n%s", len(report.Repairs), report)
	}
	for _, rp := range report.Repairs {
		if rp.TimeToDetect() <= 0 || rp.TimeToRepair() < rp.TimeToDetect() {
			t.Fatalf("implausible repair timing: %+v", rp)
		}
	}
	if report.MaxRedeployFraction >= 1 {
		t.Fatalf("a repair redeployed everything:\n%s", report)
	}
	if report.MaxTimeToRepair > 15*time.Minute {
		t.Fatalf("repair slower than three reconcile intervals:\n%s", report)
	}

	// Probe disruption stays measurable: monitoring kept producing
	// samples outside the repair windows.
	dis := metrics.ProbeDisruption(e.net, "clique:", RepairWindows(report), base, end)
	if dis.BaselinePerMinute <= 0 {
		t.Fatalf("no baseline monitoring traffic: %+v", dis)
	}
}

// TestReconcileStableWhenHealthy: rounds over an unchanged platform
// never churn the deployment.
func TestReconcileStableWhenHealthy(t *testing.T) {
	e := deployLAN(t, 5, 2, 2)
	rec := e.watch(context.Background(), 2*time.Minute)
	advance(t, e.sim, e.sim.Now()+10*time.Minute)
	rounds := rec.Rounds()
	if len(rounds) < 2 {
		t.Fatalf("only %d rounds ran", len(rounds))
	}
	for _, rd := range rounds {
		if rd.Err != nil {
			t.Fatalf("round %d errored: %v", rd.Index, rd.Err)
		}
		if rd.Drifted() || rd.Delta != nil {
			t.Fatalf("healthy platform drifted in round %d: %s", rd.Index, rd.Diff)
		}
		if len(rd.Dead) != 0 {
			t.Fatalf("healthy platform reported dead hosts: %v", rd.Dead)
		}
	}
}

// TestReconcileRunCancellation: canceling the context stops the loop.
func TestReconcileRunCancellation(t *testing.T) {
	e := deployLAN(t, 3, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	rec := New(e.pl, e.out.Deployment, Config{Runs: []core.MapRun{e.run}, Interval: time.Minute})
	var runErr error
	finished := false
	e.sim.Go("reconcile", func() {
		runErr = rec.Run(ctx)
		finished = true
	})
	e.sim.Go("cancel", func() {
		e.sim.Sleep(90 * time.Second)
		cancel()
	})
	advance(t, e.sim, e.sim.Now()+10*time.Minute)
	if !finished {
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", runErr)
	}
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

var _ = fmt.Sprintf // keep fmt handy for debugging edits
