package reconcile

import (
	"context"
	"errors"
	"testing"
	"time"

	"nwsenv/internal/core"
	"nwsenv/internal/nws/gateway"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/query"
	"nwsenv/internal/simnet"
)

// TestReconcileGatewayReplicaKilledMidStorm: on a three-site grid with
// three gateway replicas, a balanced client drives a continuous query
// storm while one non-primary replica is crashed. The surviving
// replicas must absorb the load — the client evicts the corpse after a
// single timeout and queries keep answering — the failover must be
// telemetry-observable, and the reconcile loop must re-place the dead
// replica so the deployment converges back to three gateways on live
// hosts, each rebuilt host being exactly the one whose role changed.
func TestReconcileGatewayReplicaKilledMidStorm(t *testing.T) {
	// k=1 memory replication rides along: the gateway victim may also
	// host a site's memory server, and the storm gauges the query edge,
	// not memory durability — replica-served (degraded) answers count.
	e, reg := deployGrid(t, 19, 3, 2, 2, 1, core.WithGateways(3))
	base := e.sim.Now()
	plan := e.out.Plan

	gws := plan.GatewaySet()
	if len(gws) != 3 {
		t.Fatalf("planned %d gateway replicas %v, want 3", len(gws), gws)
	}
	if gws[0] != plan.Master {
		t.Fatalf("primary gateway on %q, want the master %q", gws[0], plan.Master)
	}

	// Victim: the first non-master replica. The storm client lives on
	// the master, so killing a non-primary proves survivors absorb load
	// without the client's own host going anywhere.
	var victimName string
	for _, g := range gws[1:] {
		if g != plan.Master {
			victimName = g
			break
		}
	}
	if victimName == "" {
		t.Fatalf("no non-master gateway replica in %v", gws)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := e.watch(ctx, 2*time.Minute)

	// Let the cliques measure before the storm starts.
	advance(t, e.sim, base+3*time.Minute)
	dep := rec.Deployment()

	// Storm series: measured pairs that do not touch the victim (its
	// series die with it; the storm gauges the query plane, not them).
	var series []string
	for _, p := range dep.Plan.MeasuredPairs() {
		if p[0] == victimName || p[1] == victimName {
			continue
		}
		if len(series) < 4 {
			series = append(series, sensor.LatencySeries(dep.Resolve[p[0]], dep.Resolve[p[1]]))
		}
	}
	if len(series) == 0 {
		t.Fatal("no measured pairs clear of the victim")
	}
	var reqs []proto.SeriesRequest
	for _, s := range series {
		reqs = append(reqs, proto.SeriesRequest{Series: s, Count: 1})
	}

	// The balanced client: full replica pool via discovery, instrumented
	// so the failover shows up in the registry.
	var gwc *gateway.Client
	inSim(t, e.sim, "connect", func() {
		c, err := gateway.Connect(dep.Agents[dep.Plan.Master].Station(), dep.Resolve[dep.Plan.NameServer])
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		gwc = c
	})
	if gwc == nil {
		t.FailNow()
	}
	if h := gwc.Hosts(); len(h) != 3 {
		t.Fatalf("discovered pool %v, want all 3 replicas", h)
	}
	gwc.SetTelemetry(reg)

	// The storm: one batch every 15 virtual seconds until stopped. A
	// batch counts as answered when every series returns a sample
	// (degraded is an answer — staleness, not failure). The client is
	// kept across batches so eviction-and-retry is exercised; only when
	// a reconcile repair swaps the deployment (rebuilding agents closes
	// their stations) does the storm rebind through a fresh discovery,
	// exactly as a long-lived user would reconnect.
	var answered, failed, afterKill int
	sawSurvivorPool := false // pool shrunk to the 2 survivors pre-repair
	stop := false
	stormDone := false
	e.sim.Go("storm", func() {
		defer func() { stormDone = true }()
		d := rec.Deployment()
		curPlan := d.Plan
		pause := d.Agents[d.Plan.Master].Station().Runtime().NewInbox("storm-pause")
		for !stop {
			// A repair advances the deployment in place but installs the
			// freshly replanned Plan object: that swap is the rebind cue.
			if p := d.Plan; p != curPlan {
				st := d.Agents[p.Master].Station()
				if nc, err := gateway.Connect(st, d.Resolve[p.NameServer]); err == nil {
					curPlan, gwc = p, nc
					gwc.SetTelemetry(reg)
				}
			}
			res, err := gwc.FetchMany(reqs)
			ok := err == nil
			if ok {
				for _, r := range res {
					if (r.Err != nil && !errors.Is(r.Err, query.ErrDegraded)) || len(r.Samples) == 0 {
						ok = false
					}
				}
			}
			if ok {
				answered++
				afterKill++
				if len(gwc.Hosts()) == 2 {
					sawSurvivorPool = true
				}
			} else {
				failed++
				afterKill = 0
			}
			pause.RecvTimeout(15 * time.Second)
		}
	})

	// Warm the storm, then kill the replica under it — permanently, so
	// only reconcile re-placement restores N=3.
	advance(t, e.sim, base+5*time.Minute)
	if answered == 0 {
		t.Fatalf("storm not answering before the kill (failed %d)", failed)
	}
	simnet.CrashScenario(e.out.Resolve[victimName], e.sim.Now()+30*time.Second, 0).Schedule(e.net)

	// Ride through the crash + repair: the loop replans without the dead
	// host and re-places the replica on a survivor.
	advance(t, e.sim, base+20*time.Minute)
	stop = true
	advance(t, e.sim, e.sim.Now()+time.Minute)
	if !stormDone {
		t.Fatal("storm process did not stop")
	}

	// Survivors absorbed the load: the storm kept answering after the
	// kill (the tail of consecutive answered batches spans well past the
	// client's single eviction timeout).
	if afterKill < 10 {
		t.Fatalf("storm did not settle after the kill: %d consecutive answered batches (answered %d, failed %d)",
			afterKill, answered, failed)
	}
	// The failover is observable: the client evicted the corpse and kept
	// answering on the two survivors before the repair restored N=3.
	if !sawSurvivorPool {
		t.Fatal("storm never answered from the 2-survivor pool after the kill")
	}
	flat := reg.Snapshot().Flatten()
	if flat["gateway/client_failovers"] < 1 {
		t.Fatalf("gateway/client_failovers = %g, want >= 1", flat["gateway/client_failovers"])
	}

	// The control plane re-placed the replica: three gateways again,
	// none on the dead host, primary still the master.
	dep = rec.Deployment()
	ngws := dep.Plan.GatewaySet()
	if len(ngws) != 3 {
		t.Fatalf("repaired plan has %d gateways %v, want 3", len(ngws), ngws)
	}
	for _, g := range ngws {
		if g == victimName {
			t.Fatalf("dead host %s still holds a gateway role: %v", victimName, ngws)
		}
	}
	if ngws[0] != dep.Plan.Master {
		t.Fatalf("primary gateway %q not on the master %q after repair", ngws[0], dep.Plan.Master)
	}
	// And a fresh discovery sees all three live replicas.
	var pool []string
	inSim(t, e.sim, "rediscover", func() {
		c, err := gateway.Connect(dep.Agents[dep.Plan.Master].Station(), dep.Resolve[dep.Plan.NameServer])
		if err != nil {
			t.Errorf("post-repair connect: %v", err)
			return
		}
		pool = c.Hosts()
	})
	if len(pool) != 3 {
		t.Fatalf("post-repair discovery found %d live replicas %v, want 3", len(pool), pool)
	}
	last := rec.Rounds()[len(rec.Rounds())-1]
	if last.Err != nil || last.Drifted() {
		t.Fatalf("loop did not converge after the replica kill: %+v", last)
	}
}
