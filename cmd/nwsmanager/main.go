// Command nwsmanager applies a deployment plan and runs the monitoring
// system for a while, reporting what it measured: the runtime
// counterpart of §5.2. It drives the core pipeline's Apply stage — or,
// with -auto / -tcp, the whole pipeline in one command.
//
//	nwsmanager -topo enslyon.json -plan plan.json -duration 5m
//	nwsmanager -topo enslyon.json -plan plan.json -query moby.cri2000.ens-lyon.fr,sci3.popc.private
//	nwsmanager -topo enslyon.json -auto -duration 5m        # Map→Plan→Apply, no files
//	nwsmanager -tcp -hosts alpha,beta,gamma -duration 3s    # real loopback sockets
//
// -auto collapses the topogen→envmap→nwsdeploy→nwsmanager file relay
// into a single command over the simulated platform; -tcp runs the same
// staged pipeline over real loopback TCP sockets on the wall clock.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nwsenv/internal/cli"
	"nwsenv/internal/core"
	"nwsenv/internal/deploy"
	"nwsenv/internal/gridml"
	"nwsenv/internal/metrics"
	"nwsenv/internal/nws/memory"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/platform"
	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

func main() {
	topoFile := flag.String("topo", "", "topology spec file (required unless -tcp)")
	planFile := flag.String("plan", "", "plan/config file from nwsdeploy")
	gridmlFile := flag.String("gridml", "", "GridML file for name resolution (optional)")
	auto := flag.Bool("auto", false, "run the full Map→Plan→Apply pipeline instead of reading -plan")
	tcp := flag.Bool("tcp", false, "drive a real loopback TCP platform end to end (with -hosts)")
	hostsCSV := flag.String("hosts", "", "with -tcp: comma-separated host IDs")
	duration := flag.Duration("duration", 5*time.Minute, "monitoring duration (virtual, or wall-clock with -tcp)")
	query := flag.String("query", "", "host pair to estimate afterwards: from,to")
	pairwise := flag.Bool("pairwise", false, "drive switched cliques with the pairwise scheduler (§6 relaxation)")
	flag.Parse()

	observer := core.WithObserver(func(ph core.Phase, detail string) {
		fmt.Fprintf(os.Stderr, "[%s] %s\n", ph, detail)
	})

	if *tcp {
		runTCP(strings.Split(*hostsCSV, ","), *duration, *query, observer)
		return
	}
	if *topoFile == "" {
		fmt.Fprintln(os.Stderr, "nwsmanager: -topo is required")
		os.Exit(2)
	}
	if *auto {
		runAuto(*topoFile, *duration, *query, *pairwise, observer)
		return
	}
	if *planFile == "" {
		fmt.Fprintln(os.Stderr, "nwsmanager: -plan is required (or use -auto)")
		os.Exit(2)
	}
	runFromPlan(*topoFile, *planFile, *gridmlFile, *duration, *query, *pairwise)
}

// runAuto drives the whole pipeline on the simulated platform: one
// command instead of the topogen→envmap→nwsdeploy→nwsmanager file
// relay.
func runAuto(topoFile string, duration time.Duration, query string, pairwise bool, observer core.Option) {
	se, err := cli.LoadSim(topoFile)
	check(err)
	sim, net := se.Sim, se.Net
	runs := se.MapRuns()
	opts := []core.Option{core.WithAutoAliases(), core.WithTokenGap(time.Second), observer}
	if pairwise {
		opts = append(opts, core.WithPairwiseSwitched())
	}
	pl := core.NewPipeline(se.Plat, opts...)

	var out *core.Outcome
	var pipeErr error
	done := false
	sim.Go("pipeline", func() {
		out, pipeErr = pl.Deploy(context.Background(), runs...)
		done = true
	})
	// Advance virtual time in small steps: once the deployment is
	// applied, its agents generate events forever, so a single long
	// RunUntil would simulate hours of monitoring before returning.
	for t := sim.Now() + time.Minute; !done && t <= 240*time.Hour; t += time.Minute {
		check(sim.RunUntil(t))
	}
	check(pipeErr)
	if !done {
		check(fmt.Errorf("pipeline did not finish within the virtual time budget"))
	}

	base := sim.Now()
	check(sim.RunUntil(base + duration))
	reportSim(net, duration)
	if query != "" {
		querySim(sim, out.Deployment, out.Plan, query, base+duration)
	}
	out.Deployment.Stop()
}

// runTCP drives the staged pipeline over real loopback TCP sockets: the
// same code path as the simulator, on the wall clock.
func runTCP(hosts []string, duration time.Duration, query string, observer core.Option) {
	seen := map[string]bool{}
	for i, h := range hosts {
		h = strings.TrimSpace(h)
		hosts[i] = h
		if h == "" {
			fmt.Fprintln(os.Stderr, "nwsmanager: -tcp -hosts contains an empty host ID")
			os.Exit(2)
		}
		if seen[h] {
			fmt.Fprintf(os.Stderr, "nwsmanager: -tcp -hosts repeats %q\n", h)
			os.Exit(2)
		}
		seen[h] = true
	}
	if len(hosts) < 2 {
		fmt.Fprintln(os.Stderr, "nwsmanager: -tcp needs -hosts with at least two IDs")
		os.Exit(2)
	}
	plat := platform.NewTCPPlatform(hosts)
	pl := core.NewPipeline(plat,
		core.WithGridLabel("loopback"),
		core.WithTokenGap(50*time.Millisecond),
		observer)

	ctx := context.Background()
	m, err := pl.Map(ctx, core.MapRun{Master: hosts[0], Hosts: hosts})
	check(err)
	pr, err := pl.Plan(m)
	check(err)
	dep, err := pl.Apply(ctx, pr)
	check(err)
	defer dep.Stop()

	fmt.Printf("monitoring %d hosts over loopback TCP for %v ...\n", len(hosts), duration)
	time.Sleep(duration)

	// Read back the freshest samples through a real client station.
	ep, err := plat.Transport().Open("nwsmanager-client")
	check(err)
	client := proto.NewStation(plat.Runtime(), ep)
	defer client.Close()
	memHost := m.Resolve[pr.Plan.MemoryOf[pr.Plan.Master]]
	mc := memory.NewClient(client, memHost)
	fmt.Println("  latest bandwidth readings:")
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			samples, err := mc.Fetch(sensor.BandwidthSeries(m.Resolve[a], m.Resolve[b]), 1)
			if err != nil || len(samples) == 0 {
				continue
			}
			fmt.Printf("    %-20s %8.2f Mbps (%d samples seen)\n", a+" -> "+b, samples[0].Value, len(samples))
		}
	}
	if query != "" {
		parts := strings.SplitN(query, ",", 2)
		if len(parts) != 2 {
			check(fmt.Errorf("bad -query %q", query))
		}
		master := dep.Agents[pr.Plan.Master]
		est, err := dep.Estimator(master.Station()).Estimate(parts[0], parts[1])
		check(err)
		fmt.Printf("estimate %s -> %s: %.2f Mbps, %.2f ms RTT\n",
			parts[0], parts[1], est.BandwidthMbps, est.LatencyMS)
	}
}

// runFromPlan keeps the file-based workflow: apply a published plan on
// the simulated topology.
func runFromPlan(topoFile, planFile, gridmlFile string, duration time.Duration, query string, pairwise bool) {
	tdata, err := os.ReadFile(topoFile)
	check(err)
	spec, err := topo.DecodeSpec(tdata)
	check(err)
	tp, err := spec.Build()
	check(err)
	pdata, err := os.ReadFile(planFile)
	check(err)
	plan, err := deploy.DecodeConfig(pdata)
	check(err)

	resolve := map[string]string{}
	var doc *gridml.Document
	if gridmlFile != "" {
		gdata, err := os.ReadFile(gridmlFile)
		check(err)
		doc, err = gridml.Decode(gdata)
		check(err)
	}
	record := func(id, name string) {
		canonical := name
		if doc != nil {
			if m := doc.FindMachine(name); m != nil {
				canonical = m.CanonicalName()
			}
		}
		if _, dup := resolve[canonical]; !dup {
			resolve[canonical] = id
		}
	}
	for _, names := range spec.NamesOf {
		for id, name := range names {
			record(id, name)
		}
	}
	for _, n := range spec.Nodes {
		if n.Kind == "host" {
			if n.DNS != "" {
				record(n.ID, n.DNS)
			}
			record(n.ID, n.ID)
		}
	}

	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)
	tr := proto.NewSimTransport(net)
	dep, err := deploy.Apply(tr, sensor.SimProber{Net: net}, plan, resolve, deploy.ApplyOptions{
		TokenGap:         time.Second,
		PairwiseSwitched: pairwise,
	})
	check(err)

	check(sim.RunUntil(duration))
	reportSim(net, duration)
	if query != "" {
		querySim(sim, dep, plan, query, duration)
	}
	dep.Stop()
}

// reportSim prints the §2.3 observability report for a monitoring
// window.
func reportSim(net *simnet.Network, duration time.Duration) {
	report := metrics.Observe(net, "", duration)
	fmt.Printf("monitored %v of virtual time\n", duration)
	fmt.Printf("  probes        : %d (%.1f MB injected)\n", report.Probes, float64(report.ProbeBytes)/1e6)
	fmt.Printf("  collisions    : %d (rate %.4f)\n", report.Collisions, report.CollisionRate)
	fmt.Printf("  pair frequency: min %.2f/min max %.2f/min over %d measured pairs\n",
		report.MinPairPerMinute, report.MaxPairPerMinute, len(report.PairFrequency))

	// Show the freshest bandwidth readings per pair.
	type row struct {
		pair string
		bps  float64
	}
	var rows []row
	last := map[string]simnet.TransferStats{}
	for _, rec := range net.Records() {
		if strings.HasPrefix(rec.Tag, "clique:") {
			last[rec.Src+" -> "+rec.Dst] = rec
		}
	}
	for pair, rec := range last {
		rows = append(rows, row{pair, rec.AvgBps})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pair < rows[j].pair })
	fmt.Println("  latest bandwidth readings:")
	for _, r := range rows {
		fmt.Printf("    %-30s %8.2f Mbps\n", r.pair, r.bps/1e6)
	}
}

// querySim composes an end-to-end estimate from the running deployment.
func querySim(sim *vclock.Sim, dep *deploy.Deployment, plan *deploy.Plan, query string, until time.Duration) {
	parts := strings.SplitN(query, ",", 2)
	if len(parts) != 2 {
		check(fmt.Errorf("bad -query %q", query))
	}
	var est deploy.LinkEstimate
	var qerr error
	sim.Go("query", func() {
		master := dep.Agents[plan.Master]
		if master == nil {
			qerr = fmt.Errorf("master agent %q missing", plan.Master)
			return
		}
		es := dep.Estimator(master.Station())
		est, qerr = es.Estimate(parts[0], parts[1])
	})
	check(sim.RunUntil(until + time.Minute))
	check(qerr)
	kind := "composed via " + strings.Join(est.Via, ", ")
	if est.Direct {
		kind = "direct measurement"
	}
	fmt.Printf("estimate %s -> %s: %.2f Mbps, %.2f ms RTT (%s)\n",
		parts[0], parts[1], est.BandwidthMbps, est.LatencyMS, kind)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsmanager:", err)
		os.Exit(1)
	}
}
