// Command nwsmanager applies a deployment plan on a simulated topology,
// runs the monitoring system for a while in virtual time, and reports
// what it measured: the runtime counterpart of §5.2.
//
//	nwsmanager -topo enslyon.json -plan plan.json -duration 5m
//	nwsmanager -topo enslyon.json -plan plan.json -query moby.cri2000.ens-lyon.fr,sci3.popc.private
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nwsenv/internal/deploy"
	"nwsenv/internal/gridml"
	"nwsenv/internal/metrics"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

func main() {
	topoFile := flag.String("topo", "", "topology spec file (required)")
	planFile := flag.String("plan", "", "plan/config file from nwsdeploy (required)")
	gridmlFile := flag.String("gridml", "", "GridML file for name resolution (optional)")
	duration := flag.Duration("duration", 5*time.Minute, "virtual monitoring duration")
	query := flag.String("query", "", "host pair to estimate afterwards: from,to")
	pairwise := flag.Bool("pairwise", false, "drive switched cliques with the pairwise scheduler (§6 relaxation)")
	flag.Parse()

	if *topoFile == "" || *planFile == "" {
		fmt.Fprintln(os.Stderr, "nwsmanager: -topo and -plan are required")
		os.Exit(2)
	}
	tdata, err := os.ReadFile(*topoFile)
	check(err)
	spec, err := topo.DecodeSpec(tdata)
	check(err)
	tp, err := spec.Build()
	check(err)
	pdata, err := os.ReadFile(*planFile)
	check(err)
	plan, err := deploy.DecodeConfig(pdata)
	check(err)

	resolve := map[string]string{}
	var doc *gridml.Document
	if *gridmlFile != "" {
		gdata, err := os.ReadFile(*gridmlFile)
		check(err)
		doc, err = gridml.Decode(gdata)
		check(err)
	}
	record := func(id, name string) {
		canonical := name
		if doc != nil {
			if m := doc.FindMachine(name); m != nil {
				canonical = m.CanonicalName()
			}
		}
		if _, dup := resolve[canonical]; !dup {
			resolve[canonical] = id
		}
	}
	for _, names := range spec.NamesOf {
		for id, name := range names {
			record(id, name)
		}
	}
	for _, n := range spec.Nodes {
		if n.Kind == "host" {
			if n.DNS != "" {
				record(n.ID, n.DNS)
			}
			record(n.ID, n.ID)
		}
	}

	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)
	tr := proto.NewSimTransport(net)
	dep, err := deploy.Apply(tr, sensor.SimProber{Net: net}, plan, resolve, deploy.ApplyOptions{
		TokenGap:         time.Second,
		PairwiseSwitched: *pairwise,
	})
	check(err)

	check(sim.RunUntil(*duration))

	report := metrics.Observe(net, "", *duration)
	fmt.Printf("monitored %v of virtual time\n", *duration)
	fmt.Printf("  probes        : %d (%.1f MB injected)\n", report.Probes, float64(report.ProbeBytes)/1e6)
	fmt.Printf("  collisions    : %d (rate %.4f)\n", report.Collisions, report.CollisionRate)
	fmt.Printf("  pair frequency: min %.2f/min max %.2f/min over %d measured pairs\n",
		report.MinPairPerMinute, report.MaxPairPerMinute, len(report.PairFrequency))

	// Show the freshest bandwidth readings per pair.
	type row struct {
		pair string
		bps  float64
	}
	var rows []row
	last := map[string]simnet.TransferStats{}
	for _, rec := range net.Records() {
		if strings.HasPrefix(rec.Tag, "clique:") {
			last[rec.Src+" -> "+rec.Dst] = rec
		}
	}
	for pair, rec := range last {
		rows = append(rows, row{pair, rec.AvgBps})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pair < rows[j].pair })
	fmt.Println("  latest bandwidth readings:")
	for _, r := range rows {
		fmt.Printf("    %-30s %8.2f Mbps\n", r.pair, r.bps/1e6)
	}

	if *query != "" {
		parts := strings.SplitN(*query, ",", 2)
		if len(parts) != 2 {
			check(fmt.Errorf("bad -query %q", *query))
		}
		var est deploy.LinkEstimate
		var qerr error
		sim.Go("query", func() {
			master := dep.Agents[plan.Master]
			if master == nil {
				qerr = fmt.Errorf("master agent %q missing", plan.Master)
				return
			}
			es := dep.Estimator(master.Station())
			est, qerr = es.Estimate(parts[0], parts[1])
		})
		check(sim.RunUntil(*duration + time.Minute))
		check(qerr)
		kind := "composed via " + strings.Join(est.Via, ", ")
		if est.Direct {
			kind = "direct measurement"
		}
		fmt.Printf("estimate %s -> %s: %.2f Mbps, %.2f ms RTT (%s)\n",
			parts[0], parts[1], est.BandwidthMbps, est.LatencyMS, kind)
	}
	dep.Stop()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsmanager:", err)
		os.Exit(1)
	}
}
