// Command nwsmanager applies a deployment plan and runs the monitoring
// system for a while, reporting what it measured: the runtime
// counterpart of §5.2. It drives the core pipeline's Apply stage — or,
// with -auto / -tcp, the whole pipeline in one command, and with
// -watch, the §4.3 self-healing reconcile loop on top of it.
//
//	nwsmanager -topo enslyon.json -plan plan.json -duration 5m
//	nwsmanager -topo enslyon.json -plan plan.json -query moby.cri2000.ens-lyon.fr,sci3.popc.private
//	nwsmanager -topo enslyon.json -auto -duration 5m        # Map→Plan→Apply, no files
//	nwsmanager -tcp -hosts alpha,beta,gamma -duration 3s    # real loopback sockets
//	nwsmanager -topo lan.json -watch -scenario mixed -seed 42 -duration 40m
//	nwsmanager -tcp -hosts alpha,beta,gamma -watch -duration 30s
//
// -auto collapses the topogen→envmap→nwsdeploy→nwsmanager file relay
// into a single command over the simulated platform; -tcp runs the same
// staged pipeline over real loopback TCP sockets on the wall clock.
// -watch keeps the deployment under a reconcile control plane that
// detects drift (dead sensors, partitions, churn), re-maps, re-plans
// and applies only the delta; -scenario injects a deterministic,
// seeded fault schedule on the simulated platform to exercise it.
// Long-running modes (-tcp, -watch) shut down cleanly on SIGINT/
// SIGTERM, closing sockets and flushing a final metrics report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"nwsenv/internal/cli"
	"nwsenv/internal/core"
	"nwsenv/internal/deploy"
	"nwsenv/internal/gridml"
	"nwsenv/internal/metrics"
	"nwsenv/internal/nws/gateway"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/platform"
	"nwsenv/internal/query"
	"nwsenv/internal/reconcile"
	"nwsenv/internal/scenlab"
	"nwsenv/internal/simnet"
	"nwsenv/internal/telemetry"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

func main() {
	topoFile := flag.String("topo", "", "topology spec file (required unless -tcp)")
	planFile := flag.String("plan", "", "plan/config file from nwsdeploy")
	gridmlFile := flag.String("gridml", "", "GridML file for name resolution (optional)")
	auto := flag.Bool("auto", false, "run the full Map→Plan→Apply pipeline instead of reading -plan")
	tcp := flag.Bool("tcp", false, "drive a real loopback TCP platform end to end (with -hosts)")
	hostsCSV := flag.String("hosts", "", "with -tcp: comma-separated host IDs")
	duration := flag.Duration("duration", 5*time.Minute, "monitoring duration (virtual, or wall-clock with -tcp)")
	query := flag.String("query", "", "host pair to estimate afterwards: from,to")
	pairwise := flag.Bool("pairwise", false, "drive switched cliques with the pairwise scheduler (§6 relaxation)")
	replicas := flag.Int("replicas", 0, "replication factor k: every memory server's series get k replicas on distinct switches (0 = off)")
	gateways := flag.Int("gateways", 0, "query-gateway replica count N: primary on the master plus N-1 replicas on distinct switches (0/1 = single gateway)")
	watch := flag.Bool("watch", false, "run the self-healing reconcile loop over the deployment")
	scenario := flag.String("scenario", "none", "with -watch on a topo: fault scenario — a name resolved in -scenarios (crash, partition, ...), a .json path, or none")
	scenarioDir := flag.String("scenarios", "scenarios", "directory of declarative scenario files -scenario names resolve in")
	seed := flag.Int64("seed", 42, "seed for all scenario randomness (fault timing, victim choice, churn order)")
	interval := flag.Duration("reconcile-interval", 2*time.Minute, "reconcile round period (virtual, or wall-clock with -tcp)")
	teleDir := flag.String("telemetry", "", "directory for telemetry artifacts: metrics.jsonl, trace.jsonl and snapshot.json (periodic under -watch, final flush on exit or SIGINT)")
	pprofAddr := flag.String("pprof", "", "with -tcp: serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()
	if *interval <= 0 {
		// The reconciler and the scenario builder both pace off the
		// interval; a non-positive value would desynchronize them (and
		// starve the fault jitter), so fall back to the default.
		*interval = 2 * time.Minute
	}

	// Long-running modes stop cleanly on SIGINT/SIGTERM: the context
	// cancellation unwinds the loops, closes sockets and flushes the
	// final metrics report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	observer := core.WithObserver(func(ph core.Phase, detail string) {
		fmt.Fprintf(os.Stderr, "[%s] %s\n", ph, detail)
	})

	if *pprofAddr != "" {
		// pprof only makes sense where the process does wall-clock
		// work: the TCP platform. Simulated runs finish in milliseconds
		// and would tear the server down before a profile lands.
		if !*tcp {
			fmt.Fprintln(os.Stderr, "nwsmanager: -pprof requires -tcp")
			os.Exit(2)
		}
		ln, err := net.Listen("tcp", *pprofAddr)
		check(err)
		fmt.Fprintf(os.Stderr, "nwsmanager: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "nwsmanager: pprof server: %v\n", err)
			}
		}()
		defer ln.Close()
	}

	if *tcp {
		runTCP(ctx, strings.Split(*hostsCSV, ","), *duration, *query, *watch, *interval, *replicas, *gateways, *teleDir, observer)
		return
	}
	if *topoFile == "" {
		fmt.Fprintln(os.Stderr, "nwsmanager: -topo is required")
		os.Exit(2)
	}
	if *watch {
		runWatchSim(ctx, *topoFile, *duration, *interval, *scenario, *scenarioDir, *seed, *pairwise, *replicas, *gateways, *teleDir, observer)
		return
	}
	if *auto {
		runAuto(*topoFile, *duration, *query, *pairwise, *replicas, *gateways, *teleDir, observer)
		return
	}
	if *planFile == "" {
		fmt.Fprintln(os.Stderr, "nwsmanager: -plan is required (or use -auto)")
		os.Exit(2)
	}
	runFromPlan(*topoFile, *planFile, *gridmlFile, *duration, *query, *pairwise)
}

// wireCodecTelemetry attaches the transport's codec counters
// (proto/encode_total{version=...}, proto/bytes_out, proto/bytes_in)
// to reg. Both transport implementations expose the hook; the
// interface assertion keeps main agnostic of which one the platform
// carries.
func wireCodecTelemetry(p platform.Platform, reg *telemetry.Registry) {
	if t, ok := p.Transport().(interface {
		SetTelemetry(*telemetry.Registry)
	}); ok {
		t.SetTelemetry(reg)
	}
}

// runAuto drives the whole pipeline on the simulated platform: one
// command instead of the topogen→envmap→nwsdeploy→nwsmanager file
// relay.
func runAuto(topoFile string, duration time.Duration, query string, pairwise bool, replicas, gateways int, teleDir string, observer core.Option) {
	se, err := cli.LoadSim(topoFile)
	check(err)
	sim, net := se.Sim, se.Net
	runs := se.MapRuns()
	reg := telemetry.New(sim.Now)
	simnet.RegisterTelemetry(reg, net)
	wireCodecTelemetry(se.Plat, reg)
	opts := []core.Option{core.WithAutoAliases(), core.WithTokenGap(time.Second), core.WithTelemetry(reg), observer}
	if pairwise {
		opts = append(opts, core.WithPairwiseSwitched())
	}
	if replicas > 0 {
		opts = append(opts, core.WithReplication(replicas))
	}
	if gateways > 1 {
		opts = append(opts, core.WithGateways(gateways))
	}
	pl := core.NewPipeline(se.Plat, opts...)

	var out *core.Outcome
	var pipeErr error
	done := false
	sim.Go("pipeline", func() {
		out, pipeErr = pl.Deploy(context.Background(), runs...)
		done = true
	})
	// Advance virtual time in small steps: once the deployment is
	// applied, its agents generate events forever, so a single long
	// RunUntil would simulate hours of monitoring before returning.
	for t := sim.Now() + time.Minute; !done && t <= 240*time.Hour; t += time.Minute {
		check(sim.RunUntil(t))
	}
	check(pipeErr)
	if !done {
		check(fmt.Errorf("pipeline did not finish within the virtual time budget"))
	}

	base := sim.Now()
	check(sim.RunUntil(base + duration))
	reportSim(net, duration)
	if query != "" {
		querySim(sim, out.Deployment, out.Plan, query, base+duration)
	}
	out.Deployment.Stop()
	flushTelemetry(reg, teleDir)
}

// runWatchSim deploys on the simulated platform, then hands the system
// to the reconcile control plane while a seeded fault scenario plays
// out: §4.3's platform evolution end to end. It exits non-zero when the
// loop has not converged on a valid deployment by the end (unless it
// was interrupted).
func runWatchSim(ctx context.Context, topoFile string, duration, interval time.Duration, scenario, scenarioDir string, seed int64, pairwise bool, replicas, gateways int, teleDir string, observer core.Option) {
	se, err := cli.LoadSim(topoFile)
	check(err)
	sim, net := se.Sim, se.Net
	runs := se.MapRuns()
	reg := telemetry.New(sim.Now)
	simnet.RegisterTelemetry(reg, net)
	wireCodecTelemetry(se.Plat, reg)
	opts := []core.Option{core.WithAutoAliases(), core.WithTokenGap(time.Second), core.WithTelemetry(reg), observer}
	if pairwise {
		opts = append(opts, core.WithPairwiseSwitched())
	}
	if replicas > 0 {
		opts = append(opts, core.WithReplication(replicas))
	}
	if gateways > 1 {
		opts = append(opts, core.WithGateways(gateways))
	}
	pl := core.NewPipeline(se.Plat, opts...)

	var out *core.Outcome
	var pipeErr error
	done := false
	sim.Go("pipeline", func() {
		out, pipeErr = pl.Deploy(context.Background(), runs...)
		done = true
	})
	for at := sim.Now() + time.Minute; !done && at <= 240*time.Hour; at += time.Minute {
		check(sim.RunUntil(at))
	}
	check(pipeErr)
	if !done {
		check(fmt.Errorf("pipeline did not finish within the virtual time budget"))
	}

	base := sim.Now()
	scen, err := buildScenario(scenario, scenarioDir, seed, base, net.Topology(), out)
	check(err)
	var scenRun *simnet.ScenarioRun
	if len(scen.Events) > 0 {
		fmt.Fprintf(os.Stderr, "[reconcile] scenario %s (seed %d): %d events\n", scen.Name, seed, len(scen.Events))
		for _, e := range scen.Events {
			fmt.Fprintf(os.Stderr, "[reconcile]   t+%-8s %s\n", (e.At - base).Round(time.Second), e)
		}
		scenRun = scen.Schedule(net)
	}

	rec := reconcile.New(pl, out.Deployment, reconcile.Config{
		Runs:     runs,
		Interval: interval,
		OnRound: func(rd reconcile.Round) {
			if rd.Err != nil {
				fmt.Fprintf(os.Stderr, "[reconcile] round %d: transient: %v\n", rd.Index, rd.Err)
			}
		},
	})
	sim.Go("reconcile", func() { rec.Run(context.Background()) })

	// Drive virtual time in wall-clock-interruptible steps, refreshing
	// the live telemetry snapshot every ten virtual minutes.
	interrupted := false
	step := 0
	for at := base + time.Minute; at <= base+duration; at += time.Minute {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		check(sim.RunUntil(at))
		if step++; teleDir != "" && step%10 == 0 {
			writeSnapshot(reg, teleDir)
		}
	}
	elapsed := sim.Now() - base

	// Final metrics report: what the watch saw and what it cost.
	rounds := rec.Rounds()
	repairsN, errsN := 0, 0
	for _, rd := range rounds {
		if rd.Repaired() {
			repairsN++
		}
		if rd.Err != nil {
			errsN++
		}
	}
	fmt.Printf("watched %v of virtual time: %d reconcile rounds, %d repairs, %d transient errors\n",
		elapsed, len(rounds), repairsN, errsN)
	if scenRun != nil {
		report := rec.RecoveryReport(scenRun.Injected())
		fmt.Print(report)
		dis := metrics.ProbeDisruption(net, "clique:", reconcile.RepairWindows(report), base, sim.Now())
		fmt.Printf("probe disruption: baseline %.2f/min, during repair %.2f/min (drop %.0f%%)\n",
			dis.BaselinePerMinute, dis.RepairPerMinute, dis.Drop*100)
	}
	reportSim(net, elapsed)

	dep := rec.Deployment()
	v := deploy.ValidateConnectivity(dep.Plan)
	converged := len(rounds) > 0 && rounds[len(rounds)-1].Err == nil && !rounds[len(rounds)-1].Drifted()
	fmt.Printf("final deployment: %d hosts, complete=%v, converged=%v\n", len(dep.Plan.Hosts), v.Complete, converged)
	dep.Stop()
	// Final flush happens on the SIGINT path too: an interrupted watch
	// still leaves complete artifacts behind.
	flushTelemetry(reg, teleDir)
	if interrupted {
		fmt.Println("interrupted: shut down cleanly")
		return
	}
	if !v.Complete || !converged {
		os.Exit(1)
	}
}

// buildScenario compiles a declarative scenario file's fault plan
// against the deployed system. The name resolves to <dir>/<name>.json
// unless it already looks like a path; an unknown name lists what the
// scenario directory offers. Victim derivation and all randomness flow
// from the seed exactly as in the scenario lab, so a given (topology,
// scenario file, seed) triple replays the same faults, and the master
// is never a victim.
func buildScenario(name, dir string, seed int64, base time.Duration, tp *simnet.Topology, out *core.Outcome) (simnet.Scenario, error) {
	if name == "" || name == "none" {
		return simnet.Scenario{Name: "none"}, nil
	}
	path := name
	if !strings.ContainsRune(name, os.PathSeparator) && !strings.HasSuffix(name, ".json") {
		path = filepath.Join(dir, name+".json")
	}
	f, err := scenlab.LoadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if paths, lerr := scenlab.ListDir(dir); lerr == nil && len(paths) > 0 {
				names := make([]string, len(paths))
				for i, p := range paths {
					names[i] = strings.TrimSuffix(filepath.Base(p), ".json")
				}
				return simnet.Scenario{}, fmt.Errorf(
					"unknown scenario %q: %s/ offers %s", name, dir, strings.Join(names, ", "))
			}
			return simnet.Scenario{}, fmt.Errorf("unknown scenario %q (no scenario files under %s/)", name, dir)
		}
		return simnet.Scenario{}, err
	}
	victims, links := scenlab.PlanVictimsFor(f.Spec.Fault, out.Plan, out.Resolve, tp)
	if len(victims) == 0 {
		return simnet.Scenario{}, fmt.Errorf("scenario %s: no non-master victims", f.Spec.Name)
	}
	return f.Spec.Fault.Compile(seed, base, victims, links)
}

// runTCP drives the staged pipeline over real loopback TCP sockets: the
// same code path as the simulator, on the wall clock. With watch, the
// reconcile loop maintains the deployment until the duration elapses or
// the context is canceled (SIGINT).
func runTCP(ctx context.Context, hosts []string, duration time.Duration, queryPair string, watch bool, interval time.Duration, replicas, gateways int, teleDir string, observer core.Option) {
	seen := map[string]bool{}
	for i, h := range hosts {
		h = strings.TrimSpace(h)
		hosts[i] = h
		if h == "" {
			fmt.Fprintln(os.Stderr, "nwsmanager: -tcp -hosts contains an empty host ID")
			os.Exit(2)
		}
		if seen[h] {
			fmt.Fprintf(os.Stderr, "nwsmanager: -tcp -hosts repeats %q\n", h)
			os.Exit(2)
		}
		seen[h] = true
	}
	if len(hosts) < 2 {
		fmt.Fprintln(os.Stderr, "nwsmanager: -tcp needs -hosts with at least two IDs")
		os.Exit(2)
	}
	plat := platform.NewTCPPlatform(hosts)
	// On the TCP platform the registry reads the wall clock: the same
	// instruments, honest timings instead of deterministic ones.
	reg := telemetry.New(plat.Runtime().Now)
	wireCodecTelemetry(plat, reg)
	defer flushTelemetry(reg, teleDir)
	tcpOpts := []core.Option{
		core.WithGridLabel("loopback"),
		core.WithTokenGap(50 * time.Millisecond),
		core.WithTelemetry(reg),
		observer,
	}
	if replicas > 0 {
		tcpOpts = append(tcpOpts, core.WithReplication(replicas))
	}
	if gateways > 1 {
		tcpOpts = append(tcpOpts, core.WithGateways(gateways))
	}
	pl := core.NewPipeline(plat, tcpOpts...)

	run := core.MapRun{Master: hosts[0], Hosts: hosts}
	m, err := pl.Map(ctx, run)
	check(err)
	pr, err := pl.Plan(m)
	check(err)
	dep, err := pl.Apply(ctx, pr)
	check(err)
	defer dep.Stop()

	var rec *reconcile.Reconciler
	recDone := make(chan struct{})
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	if watch {
		rec = reconcile.New(pl, dep, reconcile.Config{Runs: []core.MapRun{run}, Interval: interval})
		go func() {
			defer close(recDone)
			rec.Run(wctx)
		}()
		fmt.Printf("watching %d hosts over loopback TCP for %v (reconcile every %v) ...\n", len(hosts), duration, interval)
	} else {
		close(recDone)
		fmt.Printf("monitoring %d hosts over loopback TCP for %v ...\n", len(hosts), duration)
	}
	select {
	case <-time.After(duration):
	case <-ctx.Done():
		fmt.Println("interrupted: flushing final report")
	}
	// Stop the reconcile loop before touching the deployment, so no
	// repair races the teardown.
	wcancel()
	<-recDone
	if rec != nil {
		rounds := rec.Rounds()
		repairs, errs := 0, 0
		for _, rd := range rounds {
			if rd.Repaired() {
				repairs++
			}
			if rd.Err != nil {
				errs++
			}
		}
		fmt.Printf("watch: %d reconcile rounds, %d repairs, %d transient errors, %d hosts live\n",
			len(rounds), repairs, errs, len(dep.Plan.Hosts))
	}

	// Read back the freshest samples through a real client station: an
	// end user of the query plane, one batched gateway round-trip for
	// every pair instead of a blocking fetch per series.
	ep, err := plat.Transport().Open("nwsmanager-client")
	check(err)
	client := proto.NewStation(plat.Runtime(), ep)
	defer client.Close()
	// The reconciled deployment's view, not the initial plan's: a -watch
	// repair may have re-homed the name server.
	nsHost := dep.Resolve[dep.Plan.NameServer]
	var pairs [][2]string
	var reqs []proto.SeriesRequest
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			pairs = append(pairs, [2]string{a, b})
			reqs = append(reqs, proto.SeriesRequest{
				Series: sensor.BandwidthSeries(m.Resolve[a], m.Resolve[b]), Count: 1,
			})
		}
	}
	// Prefer one batched round-trip through the gateway; a deployment
	// momentarily without a working one (registration TTL gap after a
	// crash, plan predating the query plane) degrades to the direct
	// query client instead of aborting the readback. The discovered
	// client is reused for the -query estimate below.
	var res []query.Result
	var gwc *gateway.Client
	var gwName string
	if c, err := gateway.Connect(client, nsHost); err == nil {
		gwc = c
		gwName = fmt.Sprintf("%d gateway replica(s), primary %s", len(c.Hosts()), c.Host)
		if r, err := gwc.FetchMany(reqs); err == nil {
			res = r
		}
	}
	if res == nil {
		res = query.New(client, nsHost).FetchMany(reqs)
	}
	fmt.Println("  latest bandwidth readings:")
	for i, r := range res {
		if r.Err != nil || len(r.Samples) == 0 {
			continue
		}
		fmt.Printf("    %-20s %8.2f Mbps (%d samples seen)\n",
			pairs[i][0]+" -> "+pairs[i][1], r.Samples[0].Value, len(r.Samples))
	}
	if queryPair != "" {
		parts := strings.SplitN(queryPair, ",", 2)
		if len(parts) != 2 {
			check(fmt.Errorf("bad -query %q", queryPair))
		}
		// Reuse the gateway discovered for the readback instead of
		// paying a second LookupKind + liveness probe.
		var es *deploy.Estimator
		if gwc != nil {
			fmt.Printf("query gateway: %s\n", gwName)
			es = deploy.NewEstimator(dep.Plan, dep.PairDataVia(gwc.FetchMany))
		} else {
			fmt.Println("query gateway: none registered, querying backends directly")
			es = dep.Estimator(client)
		}
		est, err := es.Estimate(parts[0], parts[1])
		check(err)
		fmt.Printf("estimate %s -> %s: %.2f Mbps, %.2f ms RTT\n",
			parts[0], parts[1], est.BandwidthMbps, est.LatencyMS)
	}
}

// runFromPlan keeps the file-based workflow: apply a published plan on
// the simulated topology.
func runFromPlan(topoFile, planFile, gridmlFile string, duration time.Duration, query string, pairwise bool) {
	tdata, err := os.ReadFile(topoFile)
	check(err)
	spec, err := topo.DecodeSpec(tdata)
	check(err)
	tp, err := spec.Build()
	check(err)
	pdata, err := os.ReadFile(planFile)
	check(err)
	plan, err := deploy.DecodeConfig(pdata)
	check(err)

	resolve := map[string]string{}
	var doc *gridml.Document
	if gridmlFile != "" {
		gdata, err := os.ReadFile(gridmlFile)
		check(err)
		doc, err = gridml.Decode(gdata)
		check(err)
	}
	record := func(id, name string) {
		canonical := name
		if doc != nil {
			if m := doc.FindMachine(name); m != nil {
				canonical = m.CanonicalName()
			}
		}
		if _, dup := resolve[canonical]; !dup {
			resolve[canonical] = id
		}
	}
	for _, names := range spec.NamesOf {
		for id, name := range names {
			record(id, name)
		}
	}
	for _, n := range spec.Nodes {
		if n.Kind == "host" {
			if n.DNS != "" {
				record(n.ID, n.DNS)
			}
			record(n.ID, n.ID)
		}
	}

	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)
	tr := proto.NewSimTransport(net)
	dep, err := deploy.Apply(tr, sensor.SimProber{Net: net}, plan, resolve, deploy.ApplyOptions{
		TokenGap:         time.Second,
		PairwiseSwitched: pairwise,
	})
	check(err)

	check(sim.RunUntil(duration))
	reportSim(net, duration)
	if query != "" {
		querySim(sim, dep, plan, query, duration)
	}
	dep.Stop()
}

// reportSim prints the §2.3 observability report for a monitoring
// window.
func reportSim(net *simnet.Network, duration time.Duration) {
	report := metrics.Observe(net, "", duration)
	fmt.Printf("monitored %v of virtual time\n", duration)
	fmt.Printf("  probes        : %d (%.1f MB injected)\n", report.Probes, float64(report.ProbeBytes)/1e6)
	fmt.Printf("  collisions    : %d (rate %.4f)\n", report.Collisions, report.CollisionRate)
	fmt.Printf("  pair frequency: min %.2f p50 %.2f p95 %.2f max %.2f per minute over %d measured pairs\n",
		report.MinPairPerMinute, report.P50PairPerMinute, report.P95PairPerMinute,
		report.MaxPairPerMinute, len(report.PairFrequency))

	// Show the freshest bandwidth readings per pair.
	type row struct {
		pair string
		bps  float64
	}
	var rows []row
	last := map[string]simnet.TransferStats{}
	for _, rec := range net.Records() {
		if strings.HasPrefix(rec.Tag, "clique:") {
			last[rec.Src+" -> "+rec.Dst] = rec
		}
	}
	for pair, rec := range last {
		rows = append(rows, row{pair, rec.AvgBps})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pair < rows[j].pair })
	fmt.Println("  latest bandwidth readings:")
	for _, r := range rows {
		fmt.Printf("    %-30s %8.2f Mbps\n", r.pair, r.bps/1e6)
	}
}

// gatewayEstimator locates the deployment's query gateway through the
// directory and builds an estimator querying through it — each pair's
// latency and bandwidth series travel in one batched V2 round-trip.
// Deployments without a gateway (plans predating the query plane) fall
// back to the direct query-plane client.
func gatewayEstimator(st proto.Port, dep *deploy.Deployment) *deploy.Estimator {
	nsHost := dep.Resolve[dep.Plan.NameServer]
	if c, err := gateway.Connect(st, nsHost); err == nil {
		fmt.Printf("query gateway: %d live replica(s), primary %s\n", len(c.Hosts()), c.Host)
		return deploy.NewEstimator(dep.Plan, dep.PairDataVia(c.FetchMany))
	}
	fmt.Println("query gateway: none registered, querying backends directly")
	return dep.Estimator(st)
}

// querySim composes an end-to-end estimate from the running deployment,
// queried through the gateway.
func querySim(sim *vclock.Sim, dep *deploy.Deployment, plan *deploy.Plan, query string, until time.Duration) {
	parts := strings.SplitN(query, ",", 2)
	if len(parts) != 2 {
		check(fmt.Errorf("bad -query %q", query))
	}
	var est deploy.LinkEstimate
	var qerr error
	sim.Go("query", func() {
		master := dep.Agents[plan.Master]
		if master == nil {
			qerr = fmt.Errorf("master agent %q missing", plan.Master)
			return
		}
		es := gatewayEstimator(master.Station(), dep)
		est, qerr = es.Estimate(parts[0], parts[1])
	})
	check(sim.RunUntil(until + time.Minute))
	check(qerr)
	kind := "composed via " + strings.Join(est.Via, ", ")
	if est.Direct {
		kind = "direct measurement"
	}
	fmt.Printf("estimate %s -> %s: %.2f Mbps, %.2f ms RTT (%s)\n",
		parts[0], parts[1], est.BandwidthMbps, est.LatencyMS, kind)
}

// writeSnapshot refreshes the live snapshot.json under dir: the
// -watch loop's periodic dump, overwritten in place so tailing it
// always shows the current registry state.
func writeSnapshot(reg *telemetry.Registry, dir string) {
	check(os.MkdirAll(dir, 0o755))
	check(os.WriteFile(filepath.Join(dir, "snapshot.json"), telemetry.SnapshotJSON(reg.Snapshot()), 0o644))
}

// flushTelemetry writes the final artifacts — metrics.jsonl,
// trace.jsonl and a last snapshot.json — under dir. A no-op when no
// -telemetry dir was requested.
func flushTelemetry(reg *telemetry.Registry, dir string) {
	if dir == "" {
		return
	}
	writeSnapshot(reg, dir)
	check(reg.WriteArtifacts(dir))
	fmt.Fprintf(os.Stderr, "[telemetry] wrote %s\n", filepath.Join(dir, "{metrics.jsonl,trace.jsonl,snapshot.json}"))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsmanager:", err)
		os.Exit(1)
	}
}
