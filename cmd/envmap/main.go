// Command envmap runs the ENV mapper over a simulated topology and
// prints the resulting GridML (and, with -tree, the structural and
// effective views). It drives the Map stage of the core pipeline.
//
//	topogen -kind enslyon -o enslyon.json
//	envmap -topo enslyon.json -tree -o mapping.xml
//
// With -topo pointing at a spec that carries Masters/NamesOf metadata
// (the enslyon kind does), envmap runs one mapping per master and merges
// them (any number of runs fold into one view); otherwise give -master
// (and optionally -hosts).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nwsenv/internal/cli"
	"nwsenv/internal/core"
	"nwsenv/internal/env"
	"nwsenv/internal/gridml"
	"nwsenv/internal/simnet"
)

func main() {
	topoFile := flag.String("topo", "", "topology spec file (required)")
	master := flag.String("master", "", "mapping master (node ID); overrides spec metadata")
	hostsCSV := flag.String("hosts", "", "comma-separated node IDs to map (default: all hosts)")
	tree := flag.Bool("tree", false, "print the structural tree and network list")
	strict := flag.Bool("strict-paper", false, "classify exactly as §4.2.2.4 (no bottleneck fallback)")
	bidi := flag.Bool("bidirectional", false, "also measure host→master bandwidth (detects asymmetric routes, §4.3 future work)")
	verbose := flag.Bool("v", false, "report pipeline progress on stderr")
	out := flag.String("o", "", "GridML output file (default stdout)")
	flag.Parse()

	if *topoFile == "" {
		fmt.Fprintln(os.Stderr, "envmap: -topo is required")
		os.Exit(2)
	}
	se, err := cli.LoadSim(*topoFile)
	check(err)
	sim, tp := se.Sim, se.Topo

	var runs []core.MapRun
	switch {
	case *master != "":
		runs = []core.MapRun{{Master: *master, Hosts: pickHosts(tp, *hostsCSV)}}
	case len(se.Spec.Masters) > 0:
		runs = se.MapRuns()
	default:
		hosts := pickHosts(tp, *hostsCSV)
		runs = []core.MapRun{{Master: hosts[0], Hosts: hosts}}
	}
	for i := range runs {
		runs[i].StrictPaper = *strict
		runs[i].Bidirectional = *bidi
	}

	opts := []core.Option{core.WithGridLabel("Grid1"), core.WithAutoAliases()}
	if *verbose {
		opts = append(opts, core.WithObserver(func(ph core.Phase, detail string) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", ph, detail)
		}))
	}
	pl := core.NewPipeline(se.Plat, opts...)

	var mapping *core.Mapping
	var mapErr error
	sim.Go("envmap", func() { mapping, mapErr = pl.Map(context.Background(), runs...) })
	check(sim.RunUntil(240 * time.Hour))
	check(mapErr)
	merged := mapping.Merged

	if *tree {
		for i, res := range mapping.Results {
			fmt.Fprintf(os.Stderr, "== structural tree (master %s) ==\n", runs[i].Master)
			printTree(res.Struct, 0)
		}
		fmt.Fprintln(os.Stderr, "== effective networks ==")
		for _, nw := range merged.Networks {
			asym := ""
			if nw.Asymmetric(env.DefaultThresholds().BWRatio) {
				asym = fmt.Sprintf(" ASYMMETRIC(rev %.2f)", nw.ReverseBW)
			}
			fmt.Fprintf(os.Stderr, "  %-20s %-8s base %7.2f Mbps local %7.2f Mbps  %s%s\n",
				nw.Label, nw.Class, nw.BaseBW, nw.LocalBW, strings.Join(nw.Hosts, ", "), asym)
		}
		fmt.Fprintf(os.Stderr, "mapping cost: %d probes, %.1f MB, %v of virtual time\n",
			merged.Stats.Probes, float64(merged.Stats.ProbeBytes)/1e6, merged.Stats.Duration())
	}

	enc, err := merged.Doc.Encode()
	check(err)
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	check(os.WriteFile(*out, enc, 0o644))
}

func pickHosts(tp *simnet.Topology, csv string) []string {
	if csv != "" {
		return strings.Split(csv, ",")
	}
	var hosts []string
	for _, h := range tp.HostIDs() {
		if h != tp.ExternalTarget {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// guessAliases identifies gateways: machines appearing in both runs'
// documents under different names but the same node (matched by IP).
// Kept as a named entry point; the pipeline's WithAutoAliases uses the
// same logic.
func guessAliases(results []*env.Result) []gridml.GatewayAlias {
	return env.GuessAliases(results)
}

func printTree(n *env.StructNode, depth int) {
	label := n.Hop
	if label == "" {
		label = "(root)"
	}
	fmt.Fprintf(os.Stderr, "%s%s", strings.Repeat("  ", depth+1), label)
	if len(n.Hosts) > 0 {
		fmt.Fprintf(os.Stderr, "  <- %s", strings.Join(n.Hosts, ", "))
	}
	fmt.Fprintln(os.Stderr)
	for _, c := range n.Children {
		printTree(c, depth+1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "envmap:", err)
		os.Exit(1)
	}
}
