// Command envmap runs the ENV mapper over a simulated topology and
// prints the resulting GridML (and, with -tree, the structural and
// effective views).
//
//	topogen -kind enslyon -o enslyon.json
//	envmap -topo enslyon.json -tree -o mapping.xml
//
// With -topo pointing at a spec that carries Masters/NamesOf metadata
// (the enslyon kind does), envmap runs one mapping per master and merges
// them; otherwise give -master (and optionally -hosts).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nwsenv/internal/env"
	"nwsenv/internal/gridml"
	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

func main() {
	topoFile := flag.String("topo", "", "topology spec file (required)")
	master := flag.String("master", "", "mapping master (node ID); overrides spec metadata")
	hostsCSV := flag.String("hosts", "", "comma-separated node IDs to map (default: all hosts)")
	tree := flag.Bool("tree", false, "print the structural tree and network list")
	strict := flag.Bool("strict-paper", false, "classify exactly as §4.2.2.4 (no bottleneck fallback)")
	bidi := flag.Bool("bidirectional", false, "also measure host→master bandwidth (detects asymmetric routes, §4.3 future work)")
	out := flag.String("o", "", "GridML output file (default stdout)")
	flag.Parse()

	if *topoFile == "" {
		fmt.Fprintln(os.Stderr, "envmap: -topo is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*topoFile)
	check(err)
	spec, err := topo.DecodeSpec(data)
	check(err)
	tp, err := spec.Build()
	check(err)

	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)

	var runs []env.Config
	switch {
	case *master != "":
		runs = []env.Config{{Master: *master, Hosts: pickHosts(tp, *hostsCSV), StrictPaper: *strict, Bidirectional: *bidi}}
	case len(spec.Masters) > 0:
		for _, m := range spec.Masters {
			names := spec.NamesOf[m]
			var hosts []string
			for id := range names {
				hosts = append(hosts, id)
			}
			if len(hosts) == 0 {
				hosts = pickHosts(tp, "")
			}
			runs = append(runs, env.Config{Master: m, Hosts: sortIDs(hosts, m), Names: names, StrictPaper: *strict, Bidirectional: *bidi})
		}
	default:
		hosts := pickHosts(tp, *hostsCSV)
		runs = []env.Config{{Master: hosts[0], Hosts: hosts, StrictPaper: *strict, Bidirectional: *bidi}}
	}

	var results []*env.Result
	var mapErr error
	sim.Go("envmap", func() {
		for _, cfg := range runs {
			res, err := env.NewMapper(net, cfg).Run()
			if err != nil {
				mapErr = err
				return
			}
			results = append(results, res)
		}
	})
	check(sim.RunUntil(240 * time.Hour))
	check(mapErr)

	var merged *env.Merged
	if len(results) == 1 {
		merged = env.Single(results[0])
	} else {
		aliases := guessAliases(results)
		merged, err = env.Merge("Grid1", results[0], results[1], aliases)
		check(err)
	}

	if *tree {
		for i, res := range results {
			fmt.Fprintf(os.Stderr, "== structural tree (master %s) ==\n", runs[i].Master)
			printTree(res.Struct, 0)
		}
		fmt.Fprintln(os.Stderr, "== effective networks ==")
		for _, nw := range merged.Networks {
			asym := ""
			if nw.Asymmetric(env.DefaultThresholds().BWRatio) {
				asym = fmt.Sprintf(" ASYMMETRIC(rev %.2f)", nw.ReverseBW)
			}
			fmt.Fprintf(os.Stderr, "  %-20s %-8s base %7.2f Mbps local %7.2f Mbps  %s%s\n",
				nw.Label, nw.Class, nw.BaseBW, nw.LocalBW, strings.Join(nw.Hosts, ", "), asym)
		}
		fmt.Fprintf(os.Stderr, "mapping cost: %d probes, %.1f MB, %v of virtual time\n",
			merged.Stats.Probes, float64(merged.Stats.ProbeBytes)/1e6, merged.Stats.Duration())
	}

	enc, err := merged.Doc.Encode()
	check(err)
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	check(os.WriteFile(*out, enc, 0o644))
}

func pickHosts(tp *simnet.Topology, csv string) []string {
	if csv != "" {
		return strings.Split(csv, ",")
	}
	var hosts []string
	for _, h := range tp.HostIDs() {
		if h != tp.ExternalTarget {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

func sortIDs(hosts []string, master string) []string {
	out := []string{master}
	var rest []string
	for _, h := range hosts {
		if h != master {
			rest = append(rest, h)
		}
	}
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && rest[j] < rest[j-1]; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	return append(out, rest...)
}

// guessAliases identifies gateways: machines appearing in both runs'
// documents under different names but the same node (matched by IP).
func guessAliases(results []*env.Result) []gridml.GatewayAlias {
	if len(results) < 2 {
		return nil
	}
	byIP := map[string]string{}
	for _, s := range results[0].Doc.Sites {
		for _, m := range s.Machines {
			if m.Label != nil {
				byIP[m.Label.IP] = m.CanonicalName()
			}
		}
	}
	var out []gridml.GatewayAlias
	for _, s := range results[1].Doc.Sites {
		for _, m := range s.Machines {
			if m.Label == nil {
				continue
			}
			if outName, ok := byIP[m.Label.IP]; ok && outName != m.CanonicalName() {
				out = append(out, gridml.GatewayAlias{Outside: outName, Inside: m.CanonicalName()})
			}
		}
	}
	return out
}

func printTree(n *env.StructNode, depth int) {
	label := n.Hop
	if label == "" {
		label = "(root)"
	}
	fmt.Fprintf(os.Stderr, "%s%s", strings.Repeat("  ", depth+1), label)
	if len(n.Hosts) > 0 {
		fmt.Fprintf(os.Stderr, "  <- %s", strings.Join(n.Hosts, ", "))
	}
	fmt.Fprintln(os.Stderr)
	for _, c := range n.Children {
		printTree(c, depth+1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "envmap:", err)
		os.Exit(1)
	}
}
