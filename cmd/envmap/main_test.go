package main

import (
	"testing"

	"nwsenv/internal/env"
	"nwsenv/internal/gridml"
	"nwsenv/internal/topo"
)

func TestSpecRunsMasterFirst(t *testing.T) {
	spec := &topo.Spec{
		Masters: []string{"m"},
		NamesOf: map[string]map[string]string{
			"m": {"c": "c.x.org", "a": "a.x.org", "m": "m.x.org", "b": "b.x.org"},
		},
	}
	runs := spec.Runs(nil)
	if len(runs) != 1 {
		t.Fatalf("runs %d", len(runs))
	}
	want := []string{"m", "a", "b", "c"}
	for i := range want {
		if runs[0].Hosts[i] != want[i] {
			t.Fatalf("got %v, want %v", runs[0].Hosts, want)
		}
	}
}

func TestPickHostsExcludesExternal(t *testing.T) {
	e := topo.NewEnsLyon()
	hosts := pickHosts(e.Topo, "")
	for _, h := range hosts {
		if h == "world" {
			t.Fatal("external target leaked into host list")
		}
	}
	if len(hosts) != 14 {
		t.Fatalf("hosts %d, want 14", len(hosts))
	}
	csv := pickHosts(e.Topo, "a,b,c")
	if len(csv) != 3 || csv[0] != "a" {
		t.Fatalf("csv hosts %v", csv)
	}
}

func TestGuessAliasesByIP(t *testing.T) {
	outside := &env.Result{Doc: &gridml.Document{}}
	so := outside.Doc.SiteFor("pub.org")
	so.Machines = append(so.Machines, &gridml.Machine{
		Label: &gridml.Label{IP: "1.2.3.4", Name: "gw.pub.org"},
	}, &gridml.Machine{
		Label: &gridml.Label{IP: "1.2.3.5", Name: "host.pub.org"},
	})
	inside := &env.Result{Doc: &gridml.Document{}}
	si := inside.Doc.SiteFor("priv.net")
	si.Machines = append(si.Machines, &gridml.Machine{
		Label: &gridml.Label{IP: "1.2.3.4", Name: "gw0.priv.net"},
	}, &gridml.Machine{
		Label: &gridml.Label{IP: "10.0.0.1", Name: "inner.priv.net"},
	})
	aliases := guessAliases([]*env.Result{outside, inside})
	if len(aliases) != 1 {
		t.Fatalf("aliases %+v", aliases)
	}
	if aliases[0].Outside != "gw.pub.org" || aliases[0].Inside != "gw0.priv.net" {
		t.Fatalf("alias %+v", aliases[0])
	}
}
