// Command scenlab runs the declarative scenario lab: data-defined
// fault scenarios with fixed seeds and phased execution (warmup →
// inject → recovery), per-run artifacts with provenance, and SLO
// assertions promoted to CI release gates.
//
//	scenlab run -scenario scenarios/crash.json -out lab-artifacts
//	scenlab matrix -dir scenarios -out lab-artifacts -reruns 2
//	scenlab gate -dir lab-artifacts
//
// run executes one scenario file; matrix executes every *.json in a
// directory, -reruns N times each (rerun k runs with seed+k-1, so the
// reruns measure cross-seed variance — the same seed is byte-identical
// by construction). Each run writes samples.jsonl, summary.json and
// provenance.json under <out>/<scenario>/run-<k>/. Both exit non-zero
// when any SLO gate fails. gate re-evaluates previously written
// summaries (the m5gate-style release check over committed artifacts).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nwsenv/internal/scenlab"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "matrix":
		cmdMatrix(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenlab: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scenlab run    -scenario <file.json> [-out dir] [-seed N]
  scenlab matrix [-dir scenarios] [-out dir] [-reruns N]
  scenlab gate   [-dir dir]`)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario file (required)")
	out := fs.String("out", "lab-artifacts", "artifact output directory")
	seed := fs.Int64("seed", 0, "override the file's seed (0 = use the file's)")
	replicas := fs.Int("replicas", -1, "override the file's replication factor (-1 = use the file's; scores k=0/1/2 on one scenario)")
	fs.Parse(args)
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "scenlab run: -scenario is required")
		os.Exit(2)
	}
	f, err := scenlab.LoadFile(*scenario)
	check(err)
	if *replicas >= 0 {
		f.Spec.Replication = *replicas
	}
	if !runOne(f, *out, effectiveSeed(f, *seed), 1) {
		os.Exit(1)
	}
}

func cmdMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	dir := fs.String("dir", "scenarios", "directory of scenario *.json files")
	out := fs.String("out", "lab-artifacts", "artifact output directory")
	reruns := fs.Int("reruns", 1, "runs per scenario (rerun k uses seed+k-1)")
	fs.Parse(args)
	if *reruns < 1 {
		*reruns = 1
	}
	files, err := scenlab.LoadDir(*dir)
	check(err)
	ok := true
	for _, f := range files {
		for k := 1; k <= *reruns; k++ {
			ok = runOne(f, *out, f.Spec.Seed+int64(k-1), k) && ok
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "scenlab: SLO gate breached — see the FAIL runs above")
		os.Exit(1)
	}
	fmt.Printf("scenlab: matrix passed (%d scenario(s) x %d rerun(s))\n", len(files), *reruns)
}

func cmdGate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	dir := fs.String("dir", "lab-artifacts", "artifact directory holding summary.json files")
	fs.Parse(args)
	rep, err := scenlab.Gate(*dir)
	check(err)
	fmt.Print(rep)
	if !rep.OK() {
		os.Exit(1)
	}
}

// runOne executes one (scenario, seed) run, writes its artifacts and
// prints the verdict. It returns whether the SLO gates passed.
func runOne(f *scenlab.File, outDir string, seed int64, rerun int) bool {
	res, err := scenlab.Run(f.Spec, seed)
	check(err)
	dir := filepath.Join(outDir, f.Spec.Name, fmt.Sprintf("run-%d", rerun))
	sum, err := scenlab.WriteArtifacts(dir, res, scenlab.NewProvenance(f, seed, rerun))
	check(err)
	verdict := "PASS"
	if !sum.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("%-4s %-24s seed=%-12d %2d round(s) %2d repair(s) p95 %.0fs gap %d tick(s) -> %s\n",
		verdict, f.Spec.Name, seed, sum.Rounds, sum.Repairs, sum.RecoveryP95Sec,
		sum.MaxForecastGapTicks, dir)
	for _, g := range sum.Gates {
		if !g.Pass {
			fmt.Printf("     BREACH %-30s want %-38s got %s\n", g.Name, g.Threshold, g.Measured)
		}
	}
	return sum.Pass
}

func effectiveSeed(f *scenlab.File, override int64) int64 {
	if override != 0 {
		return override
	}
	return f.Spec.Seed
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenlab:", err)
		os.Exit(1)
	}
}
