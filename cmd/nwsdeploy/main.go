// Command nwsdeploy computes an NWS deployment plan from a GridML
// mapping file (as produced by envmap), validates it when the topology
// is available, and writes the shared configuration file the managers
// consume (§5.2).
//
//	nwsdeploy -gridml mapping.xml -master the-doors.ens-lyon.fr -o plan.json
//	nwsdeploy -gridml mapping.xml -topo enslyon.json   # also validates
package main

import (
	"flag"
	"fmt"
	"os"

	"nwsenv/internal/deploy"
	"nwsenv/internal/env"
	"nwsenv/internal/gridml"
	"nwsenv/internal/topo"
)

func main() {
	gridmlFile := flag.String("gridml", "", "GridML mapping file (required)")
	master := flag.String("master", "", "master machine (canonical name; default first)")
	topoFile := flag.String("topo", "", "topology spec for §2.3 validation (optional)")
	out := flag.String("o", "", "plan output file (default stdout)")
	flag.Parse()

	if *gridmlFile == "" {
		fmt.Fprintln(os.Stderr, "nwsdeploy: -gridml is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*gridmlFile)
	check(err)
	doc, err := gridml.Decode(data)
	check(err)
	check(doc.Validate())

	merged := env.MergedFromGridML(doc)
	plan, err := deploy.NewPlan(merged, deploy.PlanConfig{Master: *master})
	check(err)

	fmt.Fprint(os.Stderr, plan.Summary())

	if *topoFile != "" {
		tdata, err := os.ReadFile(*topoFile)
		check(err)
		spec, err := topo.DecodeSpec(tdata)
		check(err)
		tp, err := spec.Build()
		check(err)
		resolve := resolveNames(doc, spec)
		v, err := deploy.Validate(plan, tp, resolve)
		check(err)
		fmt.Fprintf(os.Stderr, "validation: complete=%v directPairs=%d/%d maxClique=%d collisionRisks=%d\n",
			v.Complete, v.DirectPairs, v.TotalPairs, v.MaxCliqueSize, len(v.CollisionRisks))
		if !v.Complete {
			fmt.Fprintf(os.Stderr, "missing pairs: %v\n", v.MissingPairs)
			os.Exit(1)
		}
	}

	enc, err := deploy.EncodeConfig(plan)
	check(err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	check(os.WriteFile(*out, enc, 0o644))
}

// resolveNames maps canonical machine names to node IDs using the spec's
// per-run name tables and node DNS entries.
func resolveNames(doc *gridml.Document, spec *topo.Spec) map[string]string {
	resolve := map[string]string{}
	record := func(id, name string) {
		if m := doc.FindMachine(name); m != nil {
			resolve[m.CanonicalName()] = id
		}
	}
	for _, names := range spec.NamesOf {
		for id, name := range names {
			record(id, name)
		}
	}
	for _, n := range spec.Nodes {
		if n.Kind == "host" {
			if n.DNS != "" {
				record(n.ID, n.DNS)
			}
			record(n.ID, n.ID)
		}
	}
	return resolve
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsdeploy:", err)
		os.Exit(1)
	}
}
