// Command nwsdeploy computes an NWS deployment plan and writes the
// shared configuration file the managers consume (§5.2). It covers the
// first two stages of the core pipeline — Map and Plan — in two ways:
//
//	nwsdeploy -gridml mapping.xml -master the-doors.ens-lyon.fr -o plan.json
//	nwsdeploy -gridml mapping.xml -topo enslyon.json   # also validates
//	nwsdeploy -map -topo enslyon.json -o plan.json     # maps with ENV itself
//
// With -gridml it plans from a saved mapping file (the administrator-
// publishes-the-mapping workflow of §4.3); with -map it runs the ENV
// mapping itself over the topology spec — collapsing the
// topogen→envmap→nwsdeploy file relay into one command — and can save
// the mapping with -mapping-out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"nwsenv/internal/cli"
	"nwsenv/internal/core"
	"nwsenv/internal/deploy"
	"nwsenv/internal/env"
	"nwsenv/internal/gridml"
	"nwsenv/internal/topo"
)

func main() {
	gridmlFile := flag.String("gridml", "", "GridML mapping file (plan from a saved mapping)")
	doMap := flag.Bool("map", false, "run the ENV mapping itself (requires -topo)")
	mappingOut := flag.String("mapping-out", "", "with -map: save the merged GridML here")
	master := flag.String("master", "", "master machine (canonical name; default first)")
	topoFile := flag.String("topo", "", "topology spec for §2.3 validation (required with -map)")
	out := flag.String("o", "", "plan output file (default stdout)")
	flag.Parse()

	switch {
	case *doMap:
		if *topoFile == "" {
			fmt.Fprintln(os.Stderr, "nwsdeploy: -map requires -topo")
			os.Exit(2)
		}
		mapAndPlan(*topoFile, *master, *mappingOut, *out)
	case *gridmlFile != "":
		planFromFile(*gridmlFile, *topoFile, *master, *out)
	default:
		fmt.Fprintln(os.Stderr, "nwsdeploy: either -gridml or -map is required")
		os.Exit(2)
	}
}

// mapAndPlan drives the pipeline's Map and Plan stages on a simulated
// platform built from the spec.
func mapAndPlan(topoFile, master, mappingOut, out string) {
	se, err := cli.LoadSim(topoFile)
	check(err)
	runs := se.MapRuns()
	opts := []core.Option{
		core.WithAutoAliases(),
		core.WithObserver(func(ph core.Phase, detail string) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", ph, detail)
		}),
	}
	if master != "" {
		opts = append(opts, core.WithMaster(master))
	}
	pl := core.NewPipeline(se.Plat, opts...)

	var pr *core.PlanResult
	var pipeErr error
	se.Sim.Go("nwsdeploy", func() {
		m, err := pl.Map(context.Background(), runs...)
		if err != nil {
			pipeErr = err
			return
		}
		pr, pipeErr = pl.Plan(m)
	})
	check(se.Sim.RunUntil(240 * time.Hour))
	check(pipeErr)

	if mappingOut != "" {
		enc, err := pr.Mapping.Merged.Doc.Encode()
		check(err)
		check(os.WriteFile(mappingOut, append(enc, '\n'), 0o644))
	}
	fmt.Fprint(os.Stderr, pr.Plan.Summary())
	printValidation(pr.Validation)
	writePlan(pr.Plan, out)
}

// planFromFile keeps the file-based workflow: plan from a published
// mapping, validating against the topology when one is given.
func planFromFile(gridmlFile, topoFile, master, out string) {
	data, err := os.ReadFile(gridmlFile)
	check(err)
	doc, err := gridml.Decode(data)
	check(err)
	check(doc.Validate())

	merged := env.MergedFromGridML(doc)
	plan, err := deploy.NewPlan(merged, deploy.PlanConfig{Master: master})
	check(err)

	fmt.Fprint(os.Stderr, plan.Summary())

	if topoFile != "" {
		tdata, err := os.ReadFile(topoFile)
		check(err)
		spec, err := topo.DecodeSpec(tdata)
		check(err)
		tp, err := spec.Build()
		check(err)
		resolve := resolveNames(doc, spec)
		v, err := deploy.Validate(plan, tp, resolve)
		check(err)
		printValidation(v)
		if !v.Complete {
			os.Exit(1)
		}
	}
	writePlan(plan, out)
}

func printValidation(v *deploy.Validation) {
	fmt.Fprintf(os.Stderr, "validation: complete=%v directPairs=%d/%d maxClique=%d collisionRisks=%d\n",
		v.Complete, v.DirectPairs, v.TotalPairs, v.MaxCliqueSize, len(v.CollisionRisks))
	if !v.Complete {
		fmt.Fprintf(os.Stderr, "missing pairs: %v\n", v.MissingPairs)
	}
}

func writePlan(plan *deploy.Plan, out string) {
	enc, err := deploy.EncodeConfig(plan)
	check(err)
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	check(os.WriteFile(out, enc, 0o644))
}

// resolveNames maps canonical machine names to node IDs using the spec's
// per-run name tables and node DNS entries.
func resolveNames(doc *gridml.Document, spec *topo.Spec) map[string]string {
	resolve := map[string]string{}
	record := func(id, name string) {
		if m := doc.FindMachine(name); m != nil {
			resolve[m.CanonicalName()] = id
		}
	}
	for _, names := range spec.NamesOf {
		for id, name := range names {
			record(id, name)
		}
	}
	for _, n := range spec.Nodes {
		if n.Kind == "host" {
			if n.DNS != "" {
				record(n.ID, n.DNS)
			}
			record(n.ID, n.ID)
		}
	}
	return resolve
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsdeploy:", err)
		os.Exit(1)
	}
}
