// Command topogen generates topology spec files for the other tools.
//
//	topogen -kind enslyon                    > enslyon.json
//	topogen -kind random -seed 7 -subnets 4 -hosts 5 > lan.json
//	topogen -kind dumbbell -hosts 4 -mbps 10 > dumbbell.json
//	topogen -kind twosite -hosts 4           > twosite.json
//	topogen -kind grid -sites 10 -switches 10 -hosts 10 > grid1000.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
)

func main() {
	kind := flag.String("kind", "enslyon", "topology kind: enslyon, random, dumbbell, twosite, grid")
	seed := flag.Int64("seed", 1, "random seed (kind=random, grid)")
	subnets := flag.Int("subnets", 4, "subnet count (kind=random)")
	hosts := flag.Int("hosts", 4, "hosts per subnet / switch / side")
	mbps := flag.Float64("mbps", 10, "bottleneck capacity in Mbps (kind=dumbbell)")
	sites := flag.Int("sites", 2, "site count (kind=grid)")
	switches := flag.Int("switches", 2, "switches per site (kind=grid)")
	hubFrac := flag.Float64("hubfrac", 0, "fraction of grid segments built as hubs (kind=grid)")
	wanMS := flag.Int64("wanms", 5, "base WAN one-way latency in ms (kind=grid)")
	vlans := flag.Int("vlans", 1, "VLANs per site (kind=grid)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var spec *topo.Spec
	switch *kind {
	case "enslyon":
		spec = topo.EnsLyonSpec()
	case "random":
		t, _ := topo.RandomLAN(*seed, *subnets, *hosts)
		spec = topo.Export(t)
	case "grid":
		t, _ := topo.SyntheticGrid(topo.GridConfig{
			Sites: *sites, SwitchesPerSite: *switches, HostsPerSwitch: *hosts,
			HubFraction: *hubFrac, WANLatency: time.Duration(*wanMS) * time.Millisecond,
			VLANsPerSite: *vlans, Seed: *seed,
		})
		spec = topo.Export(t)
	case "dumbbell":
		spec = topo.Export(topo.Dumbbell(*hosts, *mbps*simnet.Mbps))
	case "twosite":
		spec = topo.Export(topo.TwoSite(*hosts, *hosts))
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	data, err := topo.EncodeSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}
