package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, benches map[string]Entry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Artifact{Command: "test", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareArtifactsGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1000}},
		"BenchmarkB": {Metrics: map[string]float64{"ns/op": 1000}},
		"BenchmarkC": {Metrics: map[string]float64{"ns/op": 1000}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1200}}, // +20%: within 25%
		"BenchmarkB": {Metrics: map[string]float64{"ns/op": 1300}}, // +30%: regression
		"BenchmarkC": {Metrics: map[string]float64{"ns/op": 400}},  // improvement
		"BenchmarkD": {Metrics: map[string]float64{"ns/op": 50}},   // new, informational
	})
	report, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("30% regression must trip the 25% gate")
	}
	for _, want := range []string{"REGRESSED", "BenchmarkB", "improved", "new      BenchmarkD"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Count(report, "REGRESSED") != 1 {
		t.Errorf("exactly one regression expected:\n%s", report)
	}
}

func TestCompareArtifactsWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1000}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1100}},
	})
	_, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("+10% must pass a 25% gate")
	}
}

func TestCompareArtifactsMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1000}},
		"BenchmarkB": {Metrics: map[string]float64{"ns/op": 1000}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1000}},
	})
	report, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("a benchmark vanishing from the run must fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") {
		t.Errorf("report should flag the missing benchmark:\n%s", report)
	}
}

func TestCompareArtifactsMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkA": {Metrics: map[string]float64{"ns/op": 1000}},
	})
	_, _, err := compareArtifacts(filepath.Join(dir, "absent.json"), newPath, 0.25)
	if err == nil {
		t.Fatal("missing baseline must error")
	}
	// main keys the "record a baseline first" hint off ErrNotExist; the
	// error must keep satisfying it through any wrapping.
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing baseline error %v does not unwrap to os.ErrNotExist", err)
	}
	if !strings.Contains(err.Error(), "absent.json") {
		t.Fatalf("error should name the missing file: %v", err)
	}
}

func TestScrubCompareArgs(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want float64
	}{
		{[]string{"old.json", "new.json", "-threshold", "0.5"}, 0.5},
		{[]string{"old.json", "new.json", "-threshold=0.3"}, 0.3},
		{[]string{"old.json", "new.json", "--threshold=0.4"}, 0.4},
		{[]string{"old.json", "new.json"}, 0.25},
	} {
		threshold := 0.25
		files, err := scrubCompareArgs(tc.args, &threshold)
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if len(files) != 2 || files[0] != "old.json" || files[1] != "new.json" {
			t.Fatalf("%v: files %v", tc.args, files)
		}
		if threshold != tc.want {
			t.Fatalf("%v: threshold %v want %v", tc.args, threshold, tc.want)
		}
	}
	if _, err := scrubCompareArgs([]string{"a", "b", "-threshold=bogus"}, new(float64)); err == nil {
		t.Fatal("bogus threshold should error")
	}
}

func TestArtifactRatio(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "art.json", map[string]Entry{
		"BenchmarkNaive": {Metrics: map[string]float64{"ns/op": 5000}},
		"BenchmarkFast":  {Metrics: map[string]float64{"ns/op": 100}},
	})
	ratio, err := artifactRatio(path, "BenchmarkNaive", "BenchmarkFast", "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 50 {
		t.Fatalf("ratio %v want 50", ratio)
	}
	if _, err := artifactRatio(path, "BenchmarkMissing", "BenchmarkFast", "ns/op"); err == nil {
		t.Fatal("missing benchmark should error")
	}
}

func TestArtifactRatioCustomMetric(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "art.json", map[string]Entry{
		// The vclock-simulation shape: wall-clock ns/op flat across the
		// sweep, the scaling story in a virtual-time custom metric.
		"BenchmarkScale/n=3": {Metrics: map[string]float64{"ns/op": 1000, "queries/s": 9000}},
		"BenchmarkScale/n=1": {Metrics: map[string]float64{"ns/op": 1000, "queries/s": 3000}},
	})
	ratio, err := artifactRatio(path, "BenchmarkScale/n=3", "BenchmarkScale/n=1", "queries/s")
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 3 {
		t.Fatalf("ratio %v want 3", ratio)
	}
	if _, err := artifactRatio(path, "BenchmarkScale/n=3", "BenchmarkScale/n=1", "p99-ms"); err == nil {
		t.Fatal("absent metric should error")
	}
}

func TestCompareGatesOnMemRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000, "B/op": 100, "allocs/op": 3}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000, "B/op": 300, "allocs/op": 3}},
	})
	report, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("3x B/op growth must trip the 25%% gate even with flat ns/op:\n%s", report)
	}
	if !strings.Contains(report, "B/op") || !strings.Contains(report, "REGRESSED") {
		t.Errorf("report does not call out the B/op regression:\n%s", report)
	}
}

func TestCompareGatesOnAllocRegressionFromZero(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 0}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 2}},
	})
	_, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("losing a zero-alloc baseline must fail the gate")
	}
}

func TestComparePassesOnMemImprovement(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000, "B/op": 4096, "allocs/op": 40}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 990, "B/op": 512, "allocs/op": 6}},
	})
	report, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("a memory improvement must pass the gate:\n%s", report)
	}
	if !strings.Contains(report, "improved") {
		t.Errorf("report does not note the improvement:\n%s", report)
	}
}

func TestCompareSkipsMemWhenBaselineLacksIt(t *testing.T) {
	// A baseline recorded before -benchmem must not fail every new run
	// that measures memory.
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000}},
	})
	newPath := writeArtifact(t, dir, "new.json", map[string]Entry{
		"BenchmarkX": {Metrics: map[string]float64{"ns/op": 1000, "B/op": 1 << 20, "allocs/op": 999}},
	})
	report, regressed, err := compareArtifacts(oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("memory metrics absent from the baseline must not gate:\n%s", report)
	}
}

func TestParseBenchOutputMemMetrics(t *testing.T) {
	out := `goos: linux
pkg: nwsenv/internal/simnet
BenchmarkScaleGridTransfers/hosts=100-8         	     120	    912345 ns/op	    2048 B/op	      31 allocs/op	      7.000 settles
PASS
`
	art := Artifact{Benchmarks: map[string]Entry{}}
	parseBenchOutput(&art, out)
	e, ok := art.Benchmarks["BenchmarkScaleGridTransfers/hosts=100"]
	if !ok {
		t.Fatalf("benchmark not parsed: %+v", art.Benchmarks)
	}
	want := map[string]float64{"ns/op": 912345, "B/op": 2048, "allocs/op": 31, "settles": 7}
	for unit, v := range want {
		if e.Metrics[unit] != v {
			t.Errorf("metric %s = %g, want %g", unit, e.Metrics[unit], v)
		}
	}

	// The emitted artifact round-trips the memory metrics.
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["BenchmarkScaleGridTransfers/hosts=100"].Metrics["B/op"] != 2048 {
		t.Errorf("B/op did not round-trip: %+v", back)
	}
}

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
pkg: nwsenv
BenchmarkScaleGridTransfers/hosts=1000-8         	       1	  16208686 ns/op	       400.0 bgflows	      1000 hosts	      8103 ns/xfer
PASS
`
	art := Artifact{Benchmarks: map[string]Entry{}}
	parseBenchOutput(&art, out)
	e, ok := art.Benchmarks["BenchmarkScaleGridTransfers/hosts=1000"]
	if !ok {
		t.Fatalf("sub-benchmark name not parsed: %v", art.Benchmarks)
	}
	if e.Metrics["ns/op"] != 16208686 || e.Metrics["hosts"] != 1000 || e.Metrics["ns/xfer"] != 8103 {
		t.Fatalf("metrics: %+v", e.Metrics)
	}
	if e.Package != "nwsenv" {
		t.Fatalf("package: %q", e.Package)
	}
}
