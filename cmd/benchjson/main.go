// Command benchjson runs `go test -bench` and emits a machine-readable
// JSON artifact — benchmark name → ns/op, allocs and every custom
// b.ReportMetric value — so CI can archive the bench trajectory of the
// repo instead of letting the numbers scroll away in logs.
//
//	benchjson -bench 'Reconcile' -out BENCH_reconcile.json ./internal/reconcile/
//	benchjson -bench . -benchtime 1x -out BENCH_all.json ./...
//
// With -compare it instead diffs two artifacts and exits non-zero when
// any benchmark's ns/op regressed by more than -threshold (default
// 0.25 = 25%), which is the CI regression gate for the committed
// BENCH_*.json baselines:
//
//	benchjson -compare old.json new.json -threshold 0.25
//
// With -ratio-min it asserts a same-run ratio between two benchmarks
// of one artifact — machine-independent, the CI gate for "incremental
// engine ≥ N× faster than the naive reference":
//
//	benchjson -ratio-num 'BenchmarkScaleGridTransfersNaive/hosts=1000' \
//	          -ratio-den 'BenchmarkScaleGridTransfers/hosts=1000' \
//	          -ratio-min 10 BENCH_scale.json
//
// The ratio defaults to ns/op; -ratio-metric gates on any custom
// b.ReportMetric unit instead — required when the benchmark's story
// lives in virtual time (a vclock simulation's wall-clock ns/op barely
// moves while its virtual-time throughput scales):
//
//	benchjson -ratio-num 'BenchmarkGatewayScale/gw=3' \
//	          -ratio-den 'BenchmarkGatewayScale/gw=1' \
//	          -ratio-metric 'queries/s' -ratio-min 2 BENCH_gateway.json
//
// With -assert-max it asserts absolute per-benchmark metric ceilings
// on one artifact. Machine-independent for deterministic metrics like
// allocs/op — the CI gate for "the batch path stays within N allocs":
//
//	benchjson -assert-max 'BenchmarkQueryBatch/hosts=500:allocs/op<=170' BENCH_query.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	Package    string `json:"package"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units ("hosts", "redeploy-fraction", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Artifact is the emitted document.
type Artifact struct {
	// Command echoes the go test invocation for reproducibility.
	Command    string           `json:"command"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   	  10   123456 ns/op  3.00 widgets ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "BENCH_reconcile.json", "output JSON file")
	bench := flag.String("bench", ".", "benchmark pattern (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
	benchmem := flag.Bool("benchmem", true, "include allocation metrics")
	compare := flag.Bool("compare", false, "compare two artifacts (old.json new.json) instead of running benchmarks")
	threshold := flag.Float64("threshold", 0.25, "allowed ns/op regression fraction in -compare mode")
	ratioNum := flag.String("ratio-num", "", "numerator benchmark name for the -ratio-min assertion on one artifact")
	ratioDen := flag.String("ratio-den", "", "denominator benchmark name for the -ratio-min assertion")
	ratioMin := flag.Float64("ratio-min", 0, "minimum ratio num/den; non-zero enables the assertion")
	ratioMetric := flag.String("ratio-metric", "ns/op", "metric key the -ratio-min assertion compares")
	assertMax := flag.String("assert-max", "", "comma-separated absolute ceilings 'bench:metric<=value' asserted on one artifact")
	flag.Parse()
	args := flag.Args()

	if *ratioMin > 0 {
		// Same-run ratio assertion: machine-independent, unlike the
		// absolute ns/op gate of -compare.
		if len(args) != 1 || *ratioNum == "" || *ratioDen == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -ratio-min needs -ratio-num, -ratio-den and one artifact file")
			os.Exit(2)
		}
		ratio, err := artifactRatio(args[0], *ratioNum, *ratioDen, *ratioMetric)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %s / %s = %.1fx on %s (minimum %.1fx)\n", *ratioNum, *ratioDen, ratio, *ratioMetric, *ratioMin)
		if ratio < *ratioMin {
			fmt.Fprintf(os.Stderr, "benchjson: ratio %.2f below required %.2f\n", ratio, *ratioMin)
			os.Exit(1)
		}
		return
	}

	if *assertMax != "" {
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -assert-max needs one artifact file")
			os.Exit(2)
		}
		if err := assertCeilings(args[0], *assertMax); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		files, err := scrubCompareArgs(args, threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two artifact files (old new)")
			os.Exit(2)
		}
		report, regressed, err := compareArtifacts(files[0], files[1], *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "benchjson: no baseline yet? record one first:\n")
				fmt.Fprintf(os.Stderr, "benchjson:   benchjson -o %s ./...\n", files[0])
				fmt.Fprintf(os.Stderr, "benchjson: then re-run -compare against a fresh artifact\n")
			}
			os.Exit(1)
		}
		fmt.Print(report)
		if regressed {
			os.Exit(1)
		}
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	runBenchmarks(*out, *bench, *benchtime, *benchmem, args)
}

func runBenchmarks(out, bench, benchtime string, benchmem bool, pkgs []string) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchtime", benchtime}
	if benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stdout.Bytes())
		fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
		os.Exit(1)
	}

	art := Artifact{
		Command:    "go " + strings.Join(args, " "),
		Benchmarks: map[string]Entry{},
	}
	parseBenchOutput(&art, stdout.String())
	if len(art.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %q in %v\n%s", bench, pkgs, stdout.String())
		os.Exit(1)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmark(s) -> %s\n", len(art.Benchmarks), out)
}

// parseBenchOutput fills art.Benchmarks from `go test -bench` output.
func parseBenchOutput(art *Artifact, output string) {
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		entry := Entry{Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The tail is tab-separated "value unit" pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			entry.Metrics[fields[i+1]] = v
		}
		art.Benchmarks[m[1]] = entry
	}
}

// scrubCompareArgs tolerates trailing flags after the positional files
// (`-compare old.json new.json -threshold 0.25` or `-threshold=0.25`):
// the flag package stops at the first positional argument.
func scrubCompareArgs(args []string, threshold *float64) ([]string, error) {
	var files []string
	parse := func(s string) error {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("bad -threshold %q", s)
		}
		*threshold = v
		return nil
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			if i+1 >= len(args) {
				return nil, fmt.Errorf("%s needs a value", a)
			}
			if err := parse(args[i+1]); err != nil {
				return nil, err
			}
			i++
		case strings.HasPrefix(a, "-threshold=") || strings.HasPrefix(a, "--threshold="):
			if err := parse(a[strings.Index(a, "=")+1:]); err != nil {
				return nil, err
			}
		default:
			files = append(files, a)
		}
	}
	return files, nil
}

// artifactRatio returns metric(num) / metric(den) from one artifact.
// assertCeilings parses 'bench:metric<=value' clauses and checks each
// against the artifact, reporting every measured value as it goes.
func assertCeilings(path, spec string) error {
	art, err := readArtifact(path)
	if err != nil {
		return err
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		name, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return fmt.Errorf("-assert-max clause %q: want 'bench:metric<=value'", clause)
		}
		metric, lim, ok := strings.Cut(rest, "<=")
		if !ok {
			return fmt.Errorf("-assert-max clause %q: want 'bench:metric<=value'", clause)
		}
		max, err := strconv.ParseFloat(strings.TrimSpace(lim), 64)
		if err != nil {
			return fmt.Errorf("-assert-max clause %q: bad ceiling: %v", clause, err)
		}
		e, found := art.Benchmarks[name]
		if !found {
			return fmt.Errorf("-assert-max: benchmark %q not in %s", name, path)
		}
		v, found := e.Metrics[strings.TrimSpace(metric)]
		if !found {
			return fmt.Errorf("-assert-max: %s has no metric %q", name, metric)
		}
		fmt.Printf("benchjson: %s %s = %g (ceiling %g)\n", name, strings.TrimSpace(metric), v, max)
		if v > max {
			return fmt.Errorf("%s %s = %g exceeds ceiling %g", name, strings.TrimSpace(metric), v, max)
		}
	}
	return nil
}

func artifactRatio(path, num, den, metric string) (float64, error) {
	art, err := readArtifact(path)
	if err != nil {
		return 0, err
	}
	var vals [2]float64
	for i, name := range []string{num, den} {
		e, ok := art.Benchmarks[name]
		if !ok {
			return 0, fmt.Errorf("%s: benchmark %q not in artifact", path, name)
		}
		v, ok := e.Metrics[metric]
		if !ok || v <= 0 {
			return 0, fmt.Errorf("%s: benchmark %q has no positive %s", path, name, metric)
		}
		vals[i] = v
	}
	return vals[0] / vals[1], nil
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// compareArtifacts diffs the ns/op of every benchmark present in the old
// artifact against the new one. It reports regressions beyond the
// threshold fraction and benchmarks that disappeared; both fail the
// gate. New-only benchmarks are informational.
func compareArtifacts(oldPath, newPath string, threshold float64) (report string, regressed bool, err error) {
	oldArt, err := readArtifact(oldPath)
	if err != nil {
		return "", false, err
	}
	newArt, err := readArtifact(newPath)
	if err != nil {
		return "", false, err
	}
	var b strings.Builder
	names := make([]string, 0, len(oldArt.Benchmarks))
	for name := range oldArt.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "benchjson: comparing %s -> %s (threshold %.0f%%)\n", oldPath, newPath, threshold*100)
	for _, name := range names {
		oldE := oldArt.Benchmarks[name]
		newE, ok := newArt.Benchmarks[name]
		if !ok {
			fmt.Fprintf(&b, "  MISSING  %-50s (present in baseline, absent in new run)\n", name)
			regressed = true
			continue
		}
		oldNs, okOld := oldE.Metrics["ns/op"]
		newNs, okNew := newE.Metrics["ns/op"]
		if !okOld || !okNew || oldNs <= 0 {
			fmt.Fprintf(&b, "  SKIP     %-50s (no ns/op to compare)\n", name)
			continue
		}
		ratio := newNs/oldNs - 1
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			regressed = true
		} else if ratio < -threshold {
			verdict = "improved"
		}
		fmt.Fprintf(&b, "  %-10s %-50s %14.0f -> %14.0f ns/op (%+.1f%%)\n",
			verdict, name, oldNs, newNs, ratio*100)
		// Memory gates apply only when both runs recorded the metric:
		// a baseline predating -benchmem must not fail every comparison.
		for _, unit := range []string{"B/op", "allocs/op"} {
			oldV, okOld := oldE.Metrics[unit]
			newV, okNew := newE.Metrics[unit]
			if !okOld || !okNew {
				continue
			}
			var frac float64
			switch {
			case oldV > 0:
				frac = newV/oldV - 1
			case newV > 0:
				// Zero-alloc baseline lost: unbounded regression.
				frac = math.Inf(1)
			default:
				continue
			}
			verdict := "ok"
			delta := fmt.Sprintf("%+.1f%%", frac*100)
			if math.IsInf(frac, 1) {
				delta = "from zero"
			}
			if frac > threshold {
				verdict = "REGRESSED"
				regressed = true
			} else if frac < -threshold {
				verdict = "improved"
			}
			fmt.Fprintf(&b, "  %-10s %-50s %14.0f -> %14.0f %s (%s)\n",
				verdict, name, oldV, newV, unit, delta)
		}
	}
	for name := range newArt.Benchmarks {
		if _, ok := oldArt.Benchmarks[name]; !ok {
			fmt.Fprintf(&b, "  new      %-50s (no baseline yet)\n", name)
		}
	}
	return b.String(), regressed, nil
}
