// Command benchjson runs `go test -bench` and emits a machine-readable
// JSON artifact — benchmark name → ns/op, allocs and every custom
// b.ReportMetric value — so CI can archive the bench trajectory of the
// repo instead of letting the numbers scroll away in logs.
//
//	benchjson -bench 'Reconcile' -out BENCH_reconcile.json ./internal/reconcile/
//	benchjson -bench . -benchtime 1x -out BENCH_all.json ./...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	Package    string `json:"package"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units ("hosts", "redeploy-fraction", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Artifact is the emitted document.
type Artifact struct {
	// Command echoes the go test invocation for reproducibility.
	Command    string           `json:"command"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   	  10   123456 ns/op  3.00 widgets ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "BENCH_reconcile.json", "output JSON file")
	bench := flag.String("bench", ".", "benchmark pattern (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
	benchmem := flag.Bool("benchmem", true, "include allocation metrics")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime}
	if *benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stdout.Bytes())
		fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
		os.Exit(1)
	}

	art := Artifact{
		Command:    "go " + strings.Join(args, " "),
		Benchmarks: map[string]Entry{},
	}
	pkg := ""
	for _, line := range strings.Split(stdout.String(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		entry := Entry{Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		// The tail is tab-separated "value unit" pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			entry.Metrics[fields[i+1]] = v
		}
		art.Benchmarks[m[1]] = entry
	}
	if len(art.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %q in %v\n%s", *bench, pkgs, stdout.String())
		os.Exit(1)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmark(s) -> %s\n", len(art.Benchmarks), *out)
}
