// Benchmark harness: one benchmark per figure and per quantitative claim
// of the paper (the experiment ids E1..E14 are indexed in DESIGN.md and
// the measured outcomes recorded in EXPERIMENTS.md). Each benchmark
// executes the full experiment per iteration and prints the reproduced
// rows once.
package nwsenv

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nwsenv/internal/baseline"
	"nwsenv/internal/deploy"
	"nwsenv/internal/env"
	"nwsenv/internal/metrics"
	"nwsenv/internal/nws/clique"
	"nwsenv/internal/nws/predict"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/nws/sensor"
	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

var printOnce sync.Map

func once(key string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fn()
	}
}

// mapEnsLyonBoth runs both ENV sides on a fresh ENS-Lyon network and
// merges them.
func mapEnsLyonBoth(b *testing.B) (*topo.EnsLyon, *simnet.Network, *env.Merged, []*env.Result) {
	b.Helper()
	e := topo.NewEnsLyon()
	sim := vclock.New()
	net := simnet.NewNetwork(sim, e.Topo)
	var outside, inside *env.Result
	var err1, err2 error
	sim.Go("map", func() {
		outside, err1 = env.NewMapper(net, env.Config{Master: e.OutsideMaster, Hosts: e.OutsideHosts, Names: e.OutsideNames}).Run()
		inside, err2 = env.NewMapper(net, env.Config{Master: e.InsideMaster, Hosts: e.InsideHosts, Names: e.InsideNames}).Run()
	})
	if err := sim.RunUntil(24 * time.Hour); err != nil {
		b.Fatal(err)
	}
	if err1 != nil || err2 != nil {
		b.Fatal(err1, err2)
	}
	merged, err := env.Merge("Grid1", outside, inside, e.GatewayAliases)
	if err != nil {
		b.Fatal(err)
	}
	return e, net, merged, []*env.Result{outside, inside}
}

func resolveEnsLyon(e *topo.EnsLyon, merged *env.Merged) map[string]string {
	resolve := map[string]string{}
	for id, name := range e.OutsideNames {
		if m := merged.Doc.FindMachine(name); m != nil {
			resolve[m.CanonicalName()] = id
		}
	}
	for id, name := range e.InsideNames {
		if m := merged.Doc.FindMachine(name); m != nil {
			resolve[m.CanonicalName()] = id
		}
	}
	return resolve
}

// ---- E1: Figure 1(b) — effective topology from the-doors ----

func BenchmarkFig1bEffectiveView(b *testing.B) {
	var merged *env.Merged
	for i := 0; i < b.N; i++ {
		_, _, merged, _ = mapEnsLyonBoth(b)
	}
	b.ReportMetric(float64(len(merged.Networks)), "networks")
	once("e1", func() {
		fmt.Println("\n[E1 / Figure 1b] effective topology after firewall merge:")
		for _, nw := range merged.Networks {
			fmt.Printf("  %-16s %-8s base %6.1f Mbps local %6.1f Mbps  %s\n",
				nw.Label, nw.Class, nw.BaseBW, nw.LocalBW, strings.Join(nw.Hosts, ", "))
		}
	})
}

// ---- E2: Figure 2 — structural traceroute tree ----

func BenchmarkFig2StructuralTree(b *testing.B) {
	var res *env.Result
	for i := 0; i < b.N; i++ {
		e := topo.NewEnsLyon()
		sim := vclock.New()
		net := simnet.NewNetwork(sim, e.Topo)
		var err error
		sim.Go("map", func() {
			res, err = env.NewMapper(net, env.Config{Master: e.OutsideMaster, Hosts: e.OutsideHosts, Names: e.OutsideNames}).Run()
		})
		if e := sim.RunUntil(24 * time.Hour); e != nil {
			b.Fatal(e)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Traceroutes), "traceroutes")
	once("e2", func() {
		fmt.Println("\n[E2 / Figure 2] structural topology (outside run):")
		var dump func(n *env.StructNode, depth int)
		dump = func(n *env.StructNode, depth int) {
			label := n.Hop
			if label == "" {
				label = "(root)"
			}
			fmt.Printf("  %s%s", strings.Repeat("  ", depth), label)
			if len(n.Hosts) > 0 {
				fmt.Printf("  <- %s", strings.Join(n.Hosts, ", "))
			}
			fmt.Println()
			for _, c := range n.Children {
				dump(c, depth+1)
			}
		}
		dump(res.Struct, 0)
	})
}

// ---- E3: Figure 3 — deployment plan ----

func BenchmarkFig3DeploymentPlan(b *testing.B) {
	var plan *deploy.Plan
	var v *deploy.Validation
	for i := 0; i < b.N; i++ {
		e, _, merged, _ := mapEnsLyonBoth(b)
		var err error
		plan, err = deploy.NewPlan(merged, deploy.PlanConfig{Master: "the-doors.ens-lyon.fr"})
		if err != nil {
			b.Fatal(err)
		}
		v, err = deploy.Validate(plan, e.Topo, resolveEnsLyon(e, merged))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(plan.Cliques)), "cliques")
	b.ReportMetric(float64(v.DirectPairs), "directPairs")
	once("e3", func() {
		fmt.Println("\n[E3 / Figure 3] NWS deployment plan:")
		fmt.Print(plan.Summary())
		fmt.Printf("  complete=%v direct=%d/%d maxClique=%d collisionRisks=%d\n",
			v.Complete, v.DirectPairs, v.TotalPairs, v.MaxCliqueSize, len(v.CollisionRisks))
	})
}

// ---- E4: §4.3 mapping cost — naive ~50 days vs ENV minutes ----

func BenchmarkE4MappingCost(b *testing.B) {
	type row struct {
		n          int
		naiveModel time.Duration
		envProbes  int
		envTime    time.Duration
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range []int{5, 10, 15, 20, 30} {
			r := row{n: n, naiveModel: baseline.NaiveMappingCost(n, 30*time.Second)}
			// ENV cost measured on a random LAN with n hosts.
			subnets := n / 5
			if subnets < 1 {
				subnets = 1
			}
			tp, _ := topo.RandomLAN(int64(n), subnets, n/subnets)
			sim := vclock.New()
			net := simnet.NewNetwork(sim, tp)
			var hosts []string
			for _, h := range tp.HostIDs() {
				if h != "world" {
					hosts = append(hosts, h)
				}
			}
			if len(hosts) > n {
				hosts = hosts[:n]
			}
			var res *env.Result
			var err error
			sim.Go("map", func() {
				res, err = env.NewMapper(net, env.Config{Master: hosts[0], Hosts: hosts}).Run()
			})
			if e := sim.RunUntil(240 * time.Hour); e != nil {
				b.Fatal(e)
			}
			if err != nil {
				b.Fatal(err)
			}
			r.envProbes = res.Stats.Probes
			r.envTime = res.Stats.Duration()
			rows = append(rows, r)
		}
	}
	once("e4", func() {
		fmt.Println("\n[E4 / §4.3] mapping cost: naive exhaustive model vs ENV (measured):")
		fmt.Printf("  %4s %16s %12s %14s\n", "n", "naive(model)", "ENV probes", "ENV time")
		for _, r := range rows {
			fmt.Printf("  %4d %13.1f d %12d %14v\n",
				r.n, r.naiveModel.Hours()/24, r.envProbes, r.envTime.Round(time.Second))
		}
		fmt.Println("  paper: \"the whole process would last about 50 days for 20 hosts\"")
		fmt.Println("         \"the mapping of our platform only last a few minutes\"")
	})
}

// ---- E5: §4.2.2.4 — the sci cluster's ENV_Switched GridML listing ----

func BenchmarkE5SciClassification(b *testing.B) {
	var sci *env.Network
	for i := 0; i < b.N; i++ {
		e := topo.NewEnsLyon()
		sim := vclock.New()
		net := simnet.NewNetwork(sim, e.Topo)
		var res *env.Result
		var err error
		sim.Go("map", func() {
			res, err = env.NewMapper(net, env.Config{Master: e.InsideMaster, Hosts: e.InsideHosts, Names: e.InsideNames}).Run()
		})
		if e := sim.RunUntil(24 * time.Hour); e != nil {
			b.Fatal(e)
		}
		if err != nil {
			b.Fatal(err)
		}
		sci = nil
		for _, nw := range res.Networks {
			for _, h := range nw.Hosts {
				if h == "sci3.popc.private" {
					sci = nw
				}
			}
		}
		if sci == nil || sci.Class != env.Switched {
			b.Fatalf("sci cluster misclassified: %+v", sci)
		}
	}
	b.ReportMetric(sci.BaseBW, "baseBWMbps")
	b.ReportMetric(sci.LocalBW, "localBWMbps")
	once("e5", func() {
		fmt.Println("\n[E5 / §4.2.2.4] sci cluster GridML (paper: ENV_Switched, base 32.65, local 32.29 on SCI hw):")
		fmt.Printf("  type=%s ENV_base_BW=%.2f Mbps ENV_base_local_BW=%.2f Mbps machines=%d\n",
			sci.Class.GridMLType(), sci.BaseBW, sci.LocalBW, len(sci.Hosts))
	})
}

// runDeployment applies a plan on a fresh ENS-Lyon network and runs it
// for window, returning the metric report and validation.
func runDeployment(b *testing.B, plan *deploy.Plan, resolve map[string]string, window time.Duration) (metrics.Report, *simnet.Network) {
	b.Helper()
	e := topo.NewEnsLyon()
	sim := vclock.New()
	net := simnet.NewNetwork(sim, e.Topo)
	tr := proto.NewSimTransport(net)
	dep, err := deploy.Apply(tr, sensor.SimProber{Net: net}, plan, resolve, deploy.ApplyOptions{TokenGap: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.RunUntil(window); err != nil {
		b.Fatal(err)
	}
	dep.Stop()
	return metrics.Observe(net, "", window), net
}

// ---- E6: §2.3 deployment quality — ENV plan vs baselines ----

func BenchmarkE6DeploymentQuality(b *testing.B) {
	type row struct {
		name       string
		probes     int
		collisions int
		complete   bool
		direct     int
		minFreq    float64
	}
	var rows []row
	window := 5 * time.Minute
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		e, _, merged, _ := mapEnsLyonBoth(b)
		resolve := resolveEnsLyon(e, merged)
		envPlan, err := deploy.NewPlan(merged, deploy.PlanConfig{Master: "the-doors.ens-lyon.fr"})
		if err != nil {
			b.Fatal(err)
		}
		hosts := envPlan.Hosts
		// A public-only host subset (no firewall in the way) isolates the
		// pure frequency cost of one big clique from the split-brain
		// failure a topology-blind mesh suffers across firewalls.
		var public []string
		for _, h := range hosts {
			if strings.HasSuffix(h, "ens-lyon.fr") {
				public = append(public, h)
			}
		}
		plans := []struct {
			name string
			p    *deploy.Plan
		}{
			{"env-planned", envPlan},
			{"mesh-public", baseline.FullMesh(public, envPlan.Master, time.Second)},
			{"mesh-all", baseline.FullMesh(hosts, envPlan.Master, time.Second)},
			{"blind-3way", baseline.BlindPartition(hosts, envPlan.Master, 3, time.Second)},
		}
		for _, pl := range plans {
			rep, _ := runDeployment(b, pl.p, resolve, window)
			est := deploy.NewEstimator(pl.p, func(a, bb string) (float64, float64, bool) { return 1, 1, true })
			complete, _ := est.Complete()
			seen := map[[2]string]struct{}{}
			for _, pr := range pl.p.MeasuredPairs() {
				seen[pr] = struct{}{}
			}
			rows = append(rows, row{
				name: pl.name, probes: rep.Probes, collisions: rep.Collisions,
				complete: complete, direct: len(seen), minFreq: rep.MinPairPerMinute,
			})
		}
	}
	once("e6", func() {
		fmt.Println("\n[E6 / §2.3] deployment quality over 5 virtual minutes (ENS-Lyon):")
		fmt.Printf("  %-12s %8s %10s %9s %7s %12s\n", "plan", "probes", "collisions", "complete", "direct", "minPair/min")
		for _, r := range rows {
			fmt.Printf("  %-12s %8d %10d %9v %7d %12.2f\n", r.name, r.probes, r.collisions, r.complete, r.direct, r.minFreq)
		}
		fmt.Println("  shape: the ENV plan keeps collisions rare at high per-pair frequency.")
		fmt.Println("  One mesh clique over reachable hosts is collision-free but slow (1/n frequency);")
		fmt.Println("  a topology-blind mesh across the firewall splits its token ring (several")
		fmt.Println("  coordinators -> colliding probes); blind partitions collide on hubs.")
	})
}

// ---- E7: §2.3 — clique frequency vs size ----

func BenchmarkE7CliqueFrequency(b *testing.B) {
	type row struct {
		n       int
		perPair float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range []int{2, 4, 8, 16, 32} {
			tp := simnet.NewTopology()
			tp.AddSwitch("sw")
			var hosts []string
			for h := 0; h < n; h++ {
				id := fmt.Sprintf("h%d", h)
				tp.AddHost(id, fmt.Sprintf("10.0.0.%d", h+1), id, "lan")
				tp.Connect(id, "sw")
				hosts = append(hosts, id)
			}
			sim := vclock.New()
			net := simnet.NewNetwork(sim, tp)
			tr := proto.NewSimTransport(net)
			cfg := clique.Config{Name: "c", Members: hosts, TokenGap: time.Second}
			var members []*clique.Member
			for _, h := range hosts {
				ep, err := tr.Open(h)
				if err != nil {
					b.Fatal(err)
				}
				st := proto.NewStation(tr.Runtime(), ep)
				m := clique.NewMember(cfg, st, sensor.SimProber{Net: net}, nil)
				members = append(members, m)
				sim.Go("m:"+h, m.Run)
			}
			window := 10 * time.Minute
			if err := sim.RunUntil(window); err != nil {
				b.Fatal(err)
			}
			for _, m := range members {
				m.Stop()
			}
			count := 0
			for _, rec := range net.Records() {
				if rec.Src == "h0" && rec.Dst == "h1" && rec.Tag != "" {
					count++
				}
			}
			rows = append(rows, row{n, float64(count) / window.Minutes()})
		}
	}
	once("e7", func() {
		fmt.Println("\n[E7 / §2.3] per-pair measurement frequency vs clique size (token gap 1s):")
		fmt.Printf("  %6s %14s\n", "size", "pair meas/min")
		for _, r := range rows {
			fmt.Printf("  %6d %14.2f\n", r.n, r.perPair)
		}
		fmt.Println("  shape: frequency ∝ 1/n — \"the frequency of the measurements obviously")
		fmt.Println("  decreases when the number of hosts in a given clique increases\".")
	})
}

// ---- E8: §2.3 — colliding probes report about half ----

func BenchmarkE8CollisionHalving(b *testing.B) {
	var alone, collided float64
	for i := 0; i < b.N; i++ {
		tp := simnet.NewTopology()
		tp.AddHub("hub", 100*simnet.Mbps)
		for _, h := range []string{"a", "b", "c", "d"} {
			tp.AddHost(h, h, h, "lan")
			tp.Connect(h, "hub")
		}
		sim := vclock.New()
		net := simnet.NewNetwork(sim, tp)
		var st1, st2, st3 simnet.TransferStats
		sim.Go("alone", func() {
			st1, _ = net.Transfer("a", "b", 4_000_000, "probe")
		})
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
		sim.Go("p1", func() { st2, _ = net.Transfer("a", "b", 4_000_000, "probe") })
		sim.Go("p2", func() { st3, _ = net.Transfer("c", "d", 4_000_000, "probe") })
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
		alone = st1.AvgBps / 1e6
		collided = (st2.AvgBps + st3.AvgBps) / 2 / 1e6
	}
	b.ReportMetric(alone, "aloneMbps")
	b.ReportMetric(collided, "collidedMbps")
	once("e8", func() {
		fmt.Println("\n[E8 / §2.3] collision effect on a 100 Mbps hub:")
		fmt.Printf("  exclusive probe: %.1f Mbps; two simultaneous probes: %.1f Mbps each\n", alone, collided)
		fmt.Println("  paper: colliding measurements \"may report an availability of about")
		fmt.Println("  the half of the real value\" — the reason cliques exist.")
	})
}

// ---- E9: §4.3 firewall merge ----

func BenchmarkE9FirewallMerge(b *testing.B) {
	var merged *env.Merged
	var gatewayOK bool
	for i := 0; i < b.N; i++ {
		_, _, m, _ := mapEnsLyonBoth(b)
		merged = m
		gw := m.Doc.FindMachine("popc0.popc.private")
		gatewayOK = gw != nil && gw.HasName("popc.ens-lyon.fr")
		if !gatewayOK {
			b.Fatal("gateway aliases lost in merge")
		}
	}
	b.ReportMetric(float64(len(merged.Doc.Sites)), "sites")
	once("e9", func() {
		fmt.Println("\n[E9 / §4.3] firewall merge:")
		fmt.Printf("  sites merged: %d; unified networks: %d; gateway aliases resolved: %v\n",
			len(merged.Doc.Sites), len(merged.Networks), gatewayOK)
		for _, ga := range []string{"popc.ens-lyon.fr", "myri.ens-lyon.fr", "sci.ens-lyon.fr"} {
			m := merged.Doc.FindMachine(ga)
			var names []string
			if m != nil && m.Label != nil {
				for _, a := range m.Label.Aliases {
					names = append(names, a.Name)
				}
			}
			fmt.Printf("  %-20s aliases: %s\n", ga, strings.Join(names, ", "))
		}
	})
}

// ---- E10: §4.3 asymmetric-route blind spot ----

func BenchmarkE10AsymmetryBlindspot(b *testing.B) {
	var reported, truthIn, truthOut float64
	for i := 0; i < b.N; i++ {
		e, _, merged, _ := mapEnsLyonBoth(b)
		tIn, _ := e.Topo.AloneBandwidth("the-doors", "popc0")
		tOut, _ := e.Topo.AloneBandwidth("popc0", "the-doors")
		truthIn, truthOut = tIn/1e6, tOut/1e6
		for _, nw := range merged.Networks {
			for _, h := range nw.Hosts {
				if h == "popc.ens-lyon.fr" {
					reported = nw.BaseBW
				}
			}
		}
	}
	b.ReportMetric(reported, "reportedMbps")
	once("e10", func() {
		fmt.Println("\n[E10 / §4.3] asymmetric routes:")
		fmt.Printf("  truth the-doors->popc0: %.0f Mbps; truth popc0->the-doors: %.0f Mbps\n", truthIn, truthOut)
		fmt.Printf("  ENV (one-way tests only) reports %.1f Mbps — the reverse direction is invisible,\n", reported)
		fmt.Println("  exactly the limitation §4.3 concedes (\"ENV bandwidth tests are conducted in only one way\").")
	})
}

// ---- E11: §4.2.2 threshold ablation ----

func BenchmarkE11ThresholdAblation(b *testing.B) {
	type row struct {
		label    string
		accuracy float64
	}
	var rows []row
	score := func(th env.Thresholds, strict bool) float64 {
		correct, total := 0, 0
		for _, seed := range []int64{1, 2, 3, 4} {
			tp, truth := topo.RandomLAN(seed, 4, 4)
			sim := vclock.New()
			net := simnet.NewNetwork(sim, tp)
			var hosts []string
			for _, h := range tp.HostIDs() {
				if h != "world" {
					hosts = append(hosts, h)
				}
			}
			var res *env.Result
			var err error
			sim.Go("map", func() {
				res, err = env.NewMapper(net, env.Config{
					Master: hosts[0], Hosts: hosts, Thresholds: th, StrictPaper: strict,
				}).Run()
			})
			if e := sim.RunUntil(240 * time.Hour); e != nil {
				b.Fatal(e)
			}
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range truth {
				total++
				for _, nw := range res.Networks {
					match := false
					for _, h := range nw.Hosts {
						if strings.HasPrefix(h, tr.Hosts[0]+".") {
							match = true
						}
					}
					if match {
						if (nw.Class == env.Shared) == tr.Shared && nw.Class != env.Unknown {
							correct++
						}
						break
					}
				}
			}
		}
		return float64(correct) / float64(total)
	}
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		def := env.DefaultThresholds()
		rows = append(rows, row{"paper defaults (3 / 1.25 / 0.7 / 0.9)", score(def, false)})
		rows = append(rows, row{"strict-paper classification", score(def, true)})
		loose := def
		loose.JammedShared, loose.JammedSwitched = 0.45, 0.55
		rows = append(rows, row{"narrow jam band (0.45/0.55)", score(loose, false)})
		tight := def
		tight.JammedShared, tight.JammedSwitched = 0.95, 0.98
		rows = append(rows, row{"degenerate jam band (0.95/0.98)", score(tight, false)})
	}
	once("e11", func() {
		fmt.Println("\n[E11 / §4.2.2] classification accuracy vs thresholds (16 segments, 4 random LANs):")
		for _, r := range rows {
			fmt.Printf("  %-40s %5.0f%%\n", r.label, r.accuracy*100)
		}
		fmt.Println("  shape: the paper's empirical thresholds sit in a robust band; the strict")
		fmt.Println("  classification loses hubs hidden behind bottleneck uplinks (§4.3 concerns).")
	})
}

// ---- E12: forecaster battery accuracy ----

func BenchmarkE12ForecasterAccuracy(b *testing.B) {
	type row struct {
		trace              string
		battery, last, m21 float64
		method             string
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		gens := []struct {
			name string
			gen  func(i int, prev float64) float64
		}{
			{"noisy-level", func(i int, prev float64) float64 {
				return 60 + 8*wave(float64(i)/7.3)
			}},
			{"random-walkish", func(i int, prev float64) float64 {
				if prev == 0 {
					prev = 50
				}
				return prev + 2*wave(float64(i)/3.1) - 1
			}},
			{"spiky", func(i int, prev float64) float64 {
				v := 80.0
				if i%17 == 0 {
					v = 20
				}
				return v + wave(float64(i)/5)
			}},
		}
		for _, g := range gens {
			bt := predict.NewBattery()
			prev := 0.0
			for k := 0; k < 2000; k++ {
				v := g.gen(k, prev)
				prev = v
				bt.Update(v)
			}
			p, _ := bt.Forecast()
			last, _ := bt.MethodError("last")
			m21, _ := bt.MethodError("mean21")
			rows = append(rows, row{g.name, p.MAE, last, m21, p.Method})
		}
	}
	once("e12", func() {
		fmt.Println("\n[E12 / §2.1] forecaster battery (per the NWS papers this work builds on):")
		fmt.Printf("  %-16s %10s %10s %10s %10s\n", "trace", "battery", "last", "mean21", "chosen")
		for _, r := range rows {
			fmt.Printf("  %-16s %10.3f %10.3f %10.3f %10s\n", r.trace, r.battery, r.last, r.m21, r.method)
		}
		fmt.Println("  shape: the battery's error always matches its best member's.")
	})
}

// ---- E13: §2.3/§5.1 composition accuracy ----

func BenchmarkE13CompositionAccuracy(b *testing.B) {
	var sum metrics.AccuracySummary
	for i := 0; i < b.N; i++ {
		e, net, merged, _ := mapEnsLyonBoth(b)
		resolve := resolveEnsLyon(e, merged)
		plan, err := deploy.NewPlan(merged, deploy.PlanConfig{Master: "the-doors.ens-lyon.fr"})
		if err != nil {
			b.Fatal(err)
		}
		net.ResetAccounting()
		tr := proto.NewSimTransport(net)
		dep, err := deploy.Apply(tr, sensor.SimProber{Net: net}, plan, resolve, deploy.ApplyOptions{TokenGap: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		sim := net.Sim()
		base := sim.Now()
		if err := sim.RunUntil(base + 3*time.Minute); err != nil {
			b.Fatal(err)
		}
		var pairs [][2]string
		for _, x := range plan.Hosts {
			for _, y := range plan.Hosts {
				if x < y {
					pairs = append(pairs, [2]string{x, y})
				}
			}
		}
		sim.Go("acc", func() {
			master := dep.Agents[plan.Master]
			est := dep.Estimator(master.Station())
			sum = metrics.Accuracy(est, e.Topo, resolve, pairs)
		})
		if err := sim.RunUntil(base + 10*time.Minute); err != nil {
			b.Fatal(err)
		}
		dep.Stop()
	}
	b.ReportMetric(sum.MedianBWRelErr, "medianBWerr")
	once("e13", func() {
		fmt.Println("\n[E13 / §2.3] composed-estimate accuracy vs ground truth (all 91 pairs):")
		fmt.Printf("  pairs evaluated: %d; median bandwidth rel. error: %.3f; median RTT rel. error: %.3f; worst bw err: %.3f\n",
			len(sum.Pairs), sum.MedianBWRelErr, sum.MedianLatRelErr, sum.WorstBWRelErr)
		fmt.Println("  paper: composed values \"may be less accurate than real tests, but are")
		fmt.Println("  still interesting when no direct test result is available\".")
	})
}

// ---- E14: §2.3 token-ring robustness ----

func BenchmarkE14TokenRecovery(b *testing.B) {
	var gap time.Duration
	var elections int
	for i := 0; i < b.N; i++ {
		tp := simnet.NewTopology()
		tp.AddSwitch("sw")
		hosts := []string{"h0", "h1", "h2", "h3"}
		for k, h := range hosts {
			tp.AddHost(h, fmt.Sprintf("10.0.0.%d", k+1), h, "lan")
			tp.Connect(h, "sw")
		}
		sim := vclock.New()
		net := simnet.NewNetwork(sim, tp)
		tr := proto.NewSimTransport(net)
		cfg := clique.Config{Name: "c", Members: hosts, TokenGap: 500 * time.Millisecond, TokenTimeout: 12 * time.Second}
		var members []*clique.Member
		var times []time.Duration
		var mu sync.Mutex
		var killHook func(sensor.Measurement)
		store := func(m sensor.Measurement) {
			mu.Lock()
			if !strings.Contains(m.Series, "h0") {
				times = append(times, m.At)
			}
			mu.Unlock()
			if killHook != nil {
				killHook(m)
			}
		}
		for _, h := range hosts {
			ep, err := tr.Open(h)
			if err != nil {
				b.Fatal(err)
			}
			st := proto.NewStation(tr.Runtime(), ep)
			m := clique.NewMember(cfg, st, sensor.SimProber{Net: net}, store)
			members = append(members, m)
			sim.Go("m:"+h, m.Run)
		}
		// killHook fires while h0 holds the token (mid-experiments of its
		// second round), so the token dies with it and only an election
		// can restore monitoring.
		holds := 0
		killHook = func(m sensor.Measurement) {
			if strings.HasPrefix(m.Series, "bandwidth.h0.") {
				holds++
				if holds == 4 {
					members[0].Stop()
					tr.SetDown("h0", true)
				}
			}
		}
		if err := sim.RunUntil(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
		for _, m := range members {
			m.Stop()
		}
		mu.Lock()
		gap = 0
		for k := 1; k < len(times); k++ {
			if g := times[k] - times[k-1]; g > gap {
				gap = g
			}
		}
		mu.Unlock()
		elections = 0
		for _, m := range members[1:] {
			elections += m.Stats().Elections
		}
	}
	b.ReportMetric(gap.Seconds(), "worstGapSec")
	once("e14", func() {
		fmt.Println("\n[E14 / §2.3] token-ring recovery after coordinator death:")
		fmt.Printf("  worst survivor measurement gap: %v; elections run: %d\n", gap.Round(time.Millisecond), elections)
		fmt.Println("  shape: monitoring resumes within the watchdog+election window —")
		fmt.Println("  \"mechanisms to handle network errors and leader elections\".")
	})
}

// wave is a deterministic pseudo-noise helper for E12.
func wave(x float64) float64 {
	x = x - float64(int64(x))
	if x < 0.5 {
		return 4*x - 1
	}
	return 3 - 4*x
}

// ---- E15: §6 "lock hosts, not networks" — pairwise scheduler ablation ----

func BenchmarkE15PairwiseAblation(b *testing.B) {
	type row struct {
		gap        time.Duration
		ring, pair float64 // per-pair measurements per minute (both directions)
	}
	var rows []row
	runOne := func(gap time.Duration, pairwise bool) float64 {
		tp := simnet.NewTopology()
		tp.AddSwitch("sw")
		resolve := map[string]string{}
		var hosts []string
		for i := 0; i < 8; i++ {
			h := string(rune('a' + i))
			tp.AddHost(h, h, h, "lan")
			tp.Connect(h, "sw")
			hosts = append(hosts, h)
			resolve[h] = h
		}
		sim := vclock.New()
		net := simnet.NewNetwork(sim, tp)
		p := &deploy.Plan{
			Label: "sw", Master: "a", NameServer: "a", Forecaster: "a",
			MemoryServers: []string{"a"}, MemoryOf: map[string]string{},
			Hosts: hosts,
			Cliques: []deploy.CliqueSpec{{
				Name: "clique-sw", Network: "sw", Members: hosts, Period: gap,
			}},
		}
		for _, h := range hosts {
			p.MemoryOf[h] = "a"
		}
		tr := proto.NewSimTransport(net)
		dep, err := deploy.Apply(tr, sensor.SimProber{Net: net}, p, resolve, deploy.ApplyOptions{
			TokenGap: gap, PairwiseSwitched: pairwise,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.RunUntil(5 * time.Minute); err != nil {
			b.Fatal(err)
		}
		dep.Stop()
		count := 0
		for _, rec := range net.Records() {
			if rec.Tag == "" {
				continue
			}
			if (rec.Src == "b" && rec.Dst == "c") || (rec.Src == "c" && rec.Dst == "b") {
				count++
			}
		}
		return float64(count) / 5
	}
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, gap := range []time.Duration{time.Second, 100 * time.Millisecond, 10 * time.Millisecond} {
			rows = append(rows, row{gap, runOne(gap, false), runOne(gap, true)})
		}
	}
	once("e15", func() {
		fmt.Println("\n[E15 / §6] token ring vs pairwise scheduler on an 8-host switch:")
		fmt.Printf("  %10s %14s %14s\n", "gap", "ring pair/min", "pairwise/min")
		for _, r := range rows {
			fmt.Printf("  %10v %14.1f %14.1f\n", r.gap, r.ring, r.pair)
		}
		fmt.Println("  shape: with a large gap the ring amortizes it over n-1 experiments per")
		fmt.Println("  hold and wins; as the gap shrinks, serialized experiment time dominates")
		fmt.Println("  and host-level locking (\"lock hosts (and not networks)\") pulls ahead —")
		fmt.Println("  the enhancement the paper's conclusion calls for.")
	})
}

// ---- E16: §4.3 future work — bidirectional mapping ----

func BenchmarkE16BidirectionalMapping(b *testing.B) {
	type out struct {
		fwd, rev    float64
		extraProbes int
		flagged     bool
	}
	var res out
	for i := 0; i < b.N; i++ {
		e := topo.NewEnsLyon()
		sim := vclock.New()
		net := simnet.NewNetwork(sim, e.Topo)
		var oneWay, both *env.Result
		var err1, err2 error
		sim.Go("map", func() {
			oneWay, err1 = env.NewMapper(net, env.Config{
				Master: e.OutsideMaster, Hosts: e.OutsideHosts, Names: e.OutsideNames,
			}).Run()
			both, err2 = env.NewMapper(net, env.Config{
				Master: e.OutsideMaster, Hosts: e.OutsideHosts, Names: e.OutsideNames,
				Bidirectional: true,
			}).Run()
		})
		if er := sim.RunUntil(24 * time.Hour); er != nil {
			b.Fatal(er)
		}
		if err1 != nil || err2 != nil {
			b.Fatal(err1, err2)
		}
		for _, nw := range both.Networks {
			for _, h := range nw.Hosts {
				if h == "popc.ens-lyon.fr" {
					res = out{
						fwd: nw.BaseBW, rev: nw.ReverseBW,
						extraProbes: both.Stats.Probes - oneWay.Stats.Probes,
						flagged:     nw.Asymmetric(env.DefaultThresholds().BWRatio),
					}
				}
			}
		}
	}
	b.ReportMetric(res.rev, "reverseMbps")
	once("e16", func() {
		fmt.Println("\n[E16 / §4.3 future work] bidirectional host-to-host phase:")
		fmt.Printf("  gateways network: forward %.1f Mbps, reverse %.1f Mbps, asymmetry flagged=%v\n",
			res.fwd, res.rev, res.flagged)
		fmt.Printf("  cost: +%d probes over the one-way run (one per non-master host)\n", res.extraProbes)
		fmt.Println("  the paper left this as future work (\"Solving this would imply almost a")
		fmt.Println("  complete rewrite of ENV tests and is still to do\"); here it is a Config flag.")
	})
}
