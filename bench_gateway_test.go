// Gateway-scaling benchmarks: the query edge under an open-loop storm,
// swept over 1→3 gateway replicas fronting the same serving stack.
//
// The driver injects a fixed-rate stream of batch fetches — one batch
// every gwStormEvery of virtual time for gwStormLength, regardless of
// completions, as an open-loop load generator — through one balanced
// gateway.Client over the full replica set. The injection rate is set
// well above a single gateway's admission capacity, so at gw=1 the
// storm queues and sheds while at gw=3 the replicas absorb it: the
// virtual-time throughput scales with the replica count while
// wall-clock ns/op (the simulator's own cost) barely moves. That is
// why the CI acceptance gate runs on the custom queries/s metric
// (benchjson -ratio-metric), not on ns/op.
//
// Reported per sweep point, all from the deterministic virtual clock:
//
//	queries/s  answered series per virtual second (throughput)
//	p50-ms, p95-ms, p99-ms  batch completion latency quantiles
//	shed-batches  batches answered CodeOverloaded on every replica
//
// CI regenerates BENCH_gateway.json and fails on ns/op regressions
// against the committed baseline; the machine-independent acceptance
// gate asserts queries/s at gw=3 >= 2x gw=1.
package nwsenv

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"nwsenv/internal/nws/gateway"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/query"
)

// gatewayHosts places the swept replicas on distinct switches of the
// 100-host grid, clear of the stack's own hosts (h0-0-*, h*-0-1).
var gatewayHosts = []string{"h0-1-0", "h1-1-0", "h0-2-0"}

const (
	// gwAdmitLimit/gwShedAt shrink each gateway's admission window so a
	// benchmark-sized storm saturates one replica without needing
	// thousands of in-flight processes.
	gwAdmitLimit = 4
	gwShedAt     = 16
	// gwBatchSeries is the series per injected batch.
	gwBatchSeries = 20
	// gwStormLength/gwStormEvery define the open-loop injection window:
	// one batch per interval, completions never pace the next send.
	gwStormLength = 20 * time.Second
	gwStormEvery  = 2 * time.Millisecond
)

// gwStormStats is one storm's outcome, measured in virtual time.
type gwStormStats struct {
	answered  int // batches fully answered
	shed      int // batches overloaded on every replica
	latencies []time.Duration
	elapsed   time.Duration // injection start -> last completion drained
}

func (s *gwStormStats) quantile(q float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(s.latencies)))
	if i >= len(s.latencies) {
		i = len(s.latencies) - 1
	}
	return s.latencies[i]
}

// runGatewayStorm builds a fresh 100-host stack with n gateway
// replicas, drives the open-loop storm, and returns its virtual-time
// stats. Deterministic: the same n always yields the same numbers.
func runGatewayStorm(b *testing.B, n int) gwStormStats {
	st := newQueryStack(b, 100, 4)
	for i := 0; i < n; i++ {
		h := gatewayHosts[i]
		ep, err := st.tr.Open(h)
		if err != nil {
			b.Fatal(err)
		}
		g := gateway.New(proto.NewStation(st.tr.Runtime(), ep), st.nsHost)
		g.SetAdmission(gwAdmitLimit, gwShedAt)
		st.sim.Go("gw:"+h, g.Run)
	}

	// Discover the full pool once; the storm shares the balanced client,
	// like a deployment's user population behind one front door.
	var gwc *gateway.Client
	st.drive(b, func() {
		// Let the replicas' directory registrations land first.
		st.client.Runtime().NewInbox("settle").RecvTimeout(2 * time.Second)
		c, err := gateway.Connect(st.client, st.nsHost)
		if err != nil {
			b.Errorf("connect: %v", err)
			return
		}
		if got := len(c.Hosts()); got != n {
			b.Errorf("discovered %d replicas, want %d", got, n)
			return
		}
		gwc = c
	})
	if gwc == nil {
		b.FailNow()
	}
	reqs := make([]proto.SeriesRequest, gwBatchSeries)
	for i := range reqs {
		reqs[i] = proto.SeriesRequest{Series: st.series[i], Count: 1}
	}

	var stats gwStormStats
	inflight := 0
	start := st.sim.Now()
	injectDone := false
	st.sim.Go("inject", func() {
		pause := st.client.Runtime().NewInbox("inject-pause")
		for seq := 0; st.sim.Now()-start < gwStormLength; seq++ {
			inflight++
			st.sim.Go(fmt.Sprintf("batch-%d", seq), func() {
				defer func() { inflight-- }()
				t0 := st.sim.Now()
				res, err := gwc.FetchMany(reqs)
				if err != nil {
					if errors.Is(err, query.ErrOverloaded) {
						stats.shed++
						return
					}
					b.Errorf("batch: %v", err)
					return
				}
				for _, r := range res {
					if r.Err != nil || len(r.Samples) == 0 {
						b.Errorf("series %s: %v (%d samples)", r.Series, r.Err, len(r.Samples))
						return
					}
				}
				stats.answered++
				stats.latencies = append(stats.latencies, st.sim.Now()-t0)
			})
			pause.RecvTimeout(gwStormEvery)
		}
		injectDone = true
	})

	// Drain: advance virtual time until the injector stopped and every
	// in-flight batch completed (answered, shed, or failed).
	deadline := start + gwStormLength + time.Hour
	for at := st.sim.Now() + time.Second; !injectDone || inflight > 0; at += time.Second {
		if at > deadline {
			b.Fatalf("storm stuck: %d batches still in flight", inflight)
		}
		if err := st.sim.RunUntil(at); err != nil {
			b.Fatal(err)
		}
	}
	stats.elapsed = st.sim.Now() - start
	sort.Slice(stats.latencies, func(i, j int) bool { return stats.latencies[i] < stats.latencies[j] })
	return stats
}

// BenchmarkGatewayScale: the open-loop storm against 1, 2 and 3 gateway
// replicas. ns/op tracks the simulator's wall cost (regression gate);
// the virtual-time custom metrics carry the scaling story.
func BenchmarkGatewayScale(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("gw=%d", n), func(b *testing.B) {
			var stats gwStormStats
			for i := 0; i < b.N; i++ {
				stats = runGatewayStorm(b, n)
			}
			if stats.answered == 0 {
				b.Fatal("storm answered nothing")
			}
			b.ReportMetric(float64(stats.answered*gwBatchSeries)/stats.elapsed.Seconds(), "queries/s")
			b.ReportMetric(stats.quantile(0.50).Seconds()*1e3, "p50-ms")
			b.ReportMetric(stats.quantile(0.95).Seconds()*1e3, "p95-ms")
			b.ReportMetric(stats.quantile(0.99).Seconds()*1e3, "p99-ms")
			b.ReportMetric(float64(stats.shed), "shed-batches")
		})
	}
}
