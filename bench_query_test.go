// Query-plane benchmarks: the client-facing cost of answering many
// series against a serving NWS stack on SyntheticGrid platforms of
// 100/500/1000 hosts. Each size runs two variants over the same stack:
//
//   - QuerySeq is the pre-query-plane client behavior — a fresh
//     directory lookup plus one blocking single-series fetch per
//     series, strictly sequential.
//   - QueryBatch is query.Client.FetchMany — one bulk directory
//     round-trip, then one batched V2 fetch per owning memory server,
//     fanned out concurrently.
//
// CI regenerates BENCH_query.json with cmd/benchjson and fails on ns/op
// regressions against the committed baseline; the machine-independent
// acceptance gate asserts Seq/Batch >= 3 at the 500-host grid.
package nwsenv

import (
	"fmt"
	"testing"
	"time"

	"nwsenv/internal/nws/forecast"
	"nwsenv/internal/nws/memory"
	"nwsenv/internal/nws/nameserver"
	"nwsenv/internal/nws/proto"
	"nwsenv/internal/query"
	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

// queryGridConfigs maps a host count to its grid shape (hosts = sites ×
// switches × 10), matching the scale benchmarks' shapes.
var queryGridConfigs = map[int]topo.GridConfig{
	100:  {Sites: 2, SwitchesPerSite: 5, HostsPerSwitch: 10, Seed: 42},
	500:  {Sites: 5, SwitchesPerSite: 10, HostsPerSwitch: 10, Seed: 42},
	1000: {Sites: 10, SwitchesPerSite: 10, HostsPerSwitch: 10, Seed: 42},
}

// querySweep is the number of series one benchmark op answers: spread
// round-robin across the sites so every memory server owns a share.
const querySweep = 100

// queryStack is a hand-placed serving stack on a synthetic grid: the
// name server on h0-0-0, one memory server per site (on h<s>-0-1), a
// forecaster on h0-0-2, and a client station on h0-0-3.
type queryStack struct {
	sim    *vclock.Sim
	tr     *proto.SimTransport
	client *proto.Station
	nsHost string
	series []string // the querySweep series, site-round-robin
}

func newQueryStack(b *testing.B, hosts int, samplesPerSeries int) *queryStack {
	cfg, ok := queryGridConfigs[hosts]
	if !ok {
		b.Fatalf("no grid config for %d hosts", hosts)
	}
	tp, _ := topo.SyntheticGrid(cfg)
	sim := vclock.New()
	net := simnet.NewNetwork(sim, tp)
	tr := proto.NewSimTransport(net)
	rt := tr.Runtime()
	open := func(h string) *proto.Station {
		ep, err := tr.Open(h)
		if err != nil {
			b.Fatal(err)
		}
		return proto.NewStation(rt, ep)
	}

	st := &queryStack{sim: sim, tr: tr, nsHost: "h0-0-0"}
	sim.Go("ns", nameserver.New(open(st.nsHost)).Run)
	memOf := map[int]string{} // site -> memory host
	for s := 0; s < cfg.Sites; s++ {
		h := fmt.Sprintf("h%d-0-1", s)
		memOf[s] = h
		stM := open(h)
		sim.Go("mem:"+h, memory.New(stM, nameserver.NewClient(stM, st.nsHost)).Run)
	}
	stFC := open("h0-0-2")
	sim.Go("fc", forecast.NewServer(stFC, nameserver.NewClient(stFC, st.nsHost), 0).Run)
	st.client = open("h0-0-3")

	// One monitored series per sweep slot, owned by its site's memory
	// server: cpu.<host> for hosts taken round-robin across sites.
	groups := topo.GridHostGroups(cfg)
	perSite := cfg.SwitchesPerSite // groups per site
	for i := 0; i < querySweep; i++ {
		site := i % cfg.Sites
		group := groups[site*perSite+(i/cfg.Sites)%perSite]
		st.series = append(st.series, "cpu."+group[i%len(group)])
	}

	// Seed the samples from a simulation process (the data plane is not
	// under measurement).
	st.drive(b, func() {
		for s := 0; s < cfg.Sites; s++ {
			mc := memory.NewClient(st.client, memOf[s])
			for i, name := range st.series {
				if i%cfg.Sites != s {
					continue
				}
				samples := make([]proto.Sample, samplesPerSeries)
				for k := range samples {
					samples[k] = proto.Sample{At: time.Duration(k) * time.Second, Value: float64(50+k) / 100}
				}
				if err := mc.Store(name, samples...); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	return st
}

// drive runs fn as a simulation process and advances virtual time until
// it returns.
func (s *queryStack) drive(b *testing.B, fn func()) {
	b.Helper()
	done := false
	s.sim.Go("op", func() { fn(); done = true })
	deadline := s.sim.Now() + time.Hour
	for at := s.sim.Now() + time.Second; !done; at += time.Second {
		if at > deadline {
			b.Fatal("benchmark op stuck")
		}
		if err := s.sim.RunUntil(at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySeq: the old client surface — per series, one directory
// lookup then one blocking single-series fetch, sequentially.
func BenchmarkQuerySeq(b *testing.B) {
	for _, hosts := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			st := newQueryStack(b, hosts, 4)
			nsc := nameserver.NewClient(st.client, st.nsHost)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.drive(b, func() {
					for _, name := range st.series {
						reg, found, err := nsc.LookupName(name)
						if err != nil || !found {
							b.Errorf("lookup %s: %v found=%v", name, err, found)
							return
						}
						samples, err := memory.NewClient(st.client, reg.Host).Fetch(name, 1)
						if err != nil || len(samples) == 0 {
							b.Errorf("fetch %s: %v", name, err)
							return
						}
					}
				})
			}
			b.StopTimer()
			b.ReportMetric(float64(querySweep*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkQueryBatch: the query plane — a cold query.Client resolves
// the whole sweep with one bulk lookup and issues one batched V2 fetch
// per memory server, concurrently.
func BenchmarkQueryBatch(b *testing.B) {
	for _, hosts := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			st := newQueryStack(b, hosts, 4)
			reqs := make([]proto.SeriesRequest, len(st.series))
			for i, name := range st.series {
				reqs[i] = proto.SeriesRequest{Series: name, Count: 1}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.drive(b, func() {
					// A fresh client per op: the measured cost includes
					// cold discovery, like the sequential baseline's.
					qc := query.New(st.client, st.nsHost)
					for _, r := range qc.FetchMany(reqs) {
						if r.Err != nil || len(r.Samples) == 0 {
							b.Errorf("series %s: %v", r.Series, r.Err)
							return
						}
					}
				})
			}
			b.StopTimer()
			b.ReportMetric(float64(querySweep*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkQueryForecastBatch: ForecastMany over the sweep — one V2
// round-trip to the forecaster, which groups its history fetches into
// one batched fetch per memory server.
func BenchmarkQueryForecastBatch(b *testing.B) {
	st := newQueryStack(b, 100, 16)
	reqs := make([]proto.SeriesRequest, len(st.series))
	for i, name := range st.series {
		reqs[i] = proto.SeriesRequest{Series: name}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.drive(b, func() {
			qc := query.New(st.client, st.nsHost, query.WithForecastTTL(0))
			for _, r := range qc.ForecastMany(reqs) {
				if r.Err != nil {
					b.Errorf("forecast %s: %v", r.Series, r.Err)
					return
				}
			}
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(querySweep*b.N)/b.Elapsed().Seconds(), "forecasts/s")
}
