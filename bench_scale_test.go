// Scale benchmarks: the simulation core on SyntheticGrid platforms of
// 100/500/1000 hosts, with hundreds of standing background flows and a
// churn of probe transfers — the load shape `nwsmanager -watch` plus the
// reconciler generate. Each benchmark exists in an incremental-engine
// and a naive-reference-engine variant so the BENCH_scale.json artifact
// records the before/after of the component-scoped fair-share recompute.
// CI regenerates the artifact and fails on ns/op regressions against the
// committed baseline (cmd/benchjson -compare).
package nwsenv

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"nwsenv/internal/simnet"
	"nwsenv/internal/topo"
	"nwsenv/internal/vclock"
)

// scaleConfigs maps a host count to its grid shape (hosts = sites ×
// switches × 10).
var scaleConfigs = map[int]topo.GridConfig{
	100:  {Sites: 2, SwitchesPerSite: 5, HostsPerSwitch: 10, Seed: 42},
	500:  {Sites: 5, SwitchesPerSite: 10, HostsPerSwitch: 10, Seed: 42},
	1000: {Sites: 10, SwitchesPerSite: 10, HostsPerSwitch: 10, Seed: 42},
}

const (
	// bgPairsPerSwitch standing flows per leaf segment occupy hosts
	// h0..h7; the probe churn runs on the reserved pair (h8, h9), so
	// every flow set is resource-disjoint from the others — the
	// best case for component-scoped recomputation and the worst case
	// for the global reference engine.
	bgPairsPerSwitch = 4
	probesPerSwitch  = 20
	// bgBytes keeps a background flow alive (at its 12.5 MB/s fair
	// share) well past the last probe, yet lets it finish inside the
	// 5-minute window so every simulation process exits and iterations
	// do not leak goroutines.
	bgBytes = int64(400_000_000)
)

// runScaleTransfers drives the probe churn against standing background
// flows and reports the wall cost per completed probe transfer.
func runScaleTransfers(b *testing.B, hosts int, naive bool) {
	cfg, ok := scaleConfigs[hosts]
	if !ok {
		b.Fatalf("no grid config for %d hosts", hosts)
	}
	groups := topo.GridHostGroups(cfg)
	expected := len(groups) * (probesPerSwitch + bgPairsPerSwitch)
	var lastNet *simnet.Network
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC() // isolate iterations from each other's garbage
		tp, _ := topo.SyntheticGrid(cfg)
		sim := vclock.New()
		var net *simnet.Network
		if naive {
			net = simnet.NewNaiveNetwork(sim, tp)
		} else {
			net = simnet.NewNetwork(sim, tp)
		}
		lastNet = net
		for _, g := range groups {
			for p := 0; p < bgPairsPerSwitch; p++ {
				src, dst := g[2*p], g[2*p+1]
				sim.Go("bg:"+src, func() {
					net.Transfer(src, dst, bgBytes, "")
				})
			}
		}
		for w, g := range groups {
			w, g := w, g
			sim.Go(fmt.Sprintf("probe%d", w), func() {
				// Jittered start and sizes de-synchronize completions so
				// every probe pays its own arrival + completion event.
				sim.Sleep(time.Second + time.Duration(w*7)*time.Millisecond)
				for k := 0; k < probesPerSwitch; k++ {
					bytes := int64(2_000_000 + w*1009 + k*50023)
					if _, err := net.Transfer(g[8], g[9], bytes, ""); err != nil {
						b.Errorf("probe transfer: %v", err)
						return
					}
				}
			})
		}
		// Let the background flows arrive before the clock starts.
		if err := sim.RunUntil(900 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sim.RunUntil(5 * time.Minute); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := len(net.Records()); got != expected {
			b.Fatalf("completed %d transfers, want %d", got, expected)
		}
		b.StartTimer()
	}
	total := b.N * len(groups) * probesPerSwitch
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/xfer")
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "xfers/s")
	b.ReportMetric(float64(hosts), "hosts")
	b.ReportMetric(float64(len(groups)*bgPairsPerSwitch), "bgflows")
	hits, misses := lastNet.Topology().RouteCacheStats()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "routeHitRate")
	}
}

func BenchmarkScaleGridTransfers(b *testing.B) {
	for _, hosts := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			runScaleTransfers(b, hosts, false)
		})
	}
}

func BenchmarkScaleGridTransfersNaive(b *testing.B) {
	for _, hosts := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			runScaleTransfers(b, hosts, true)
		})
	}
}

// scalePairs derives a deterministic cross-site pair list.
func scalePairs(tp *simnet.Topology, n int, seed int64) [][2]string {
	hosts := tp.HostIDs()
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]string
	for len(pairs) < n {
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a != b && a != "world" && b != "world" {
			pairs = append(pairs, [2]string{a, b})
		}
	}
	return pairs
}

// BenchmarkScaleRoutingCold measures heap-Dijkstra itself: every query
// below hits a cold cache on a 1,000-host grid.
func BenchmarkScaleRoutingCold(b *testing.B) {
	const queries = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tp, _ := topo.SyntheticGrid(scaleConfigs[1000])
		pairs := scalePairs(tp, queries, int64(i)+1)
		b.StartTimer()
		for _, p := range pairs {
			if _, err := tp.Path(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*queries), "ns/path")
}

// BenchmarkScaleFaultRerouting measures fault-scoped route-cache
// invalidation: leaf-host crashes evict only the routes through the
// victim, so a warm 400-pair cache keeps serving during a crash storm
// (the old behavior wiped the whole cache on every fault).
func BenchmarkScaleFaultRerouting(b *testing.B) {
	tp, _ := topo.SyntheticGrid(scaleConfigs[1000])
	pairs := scalePairs(tp, 400, 7)
	inPairs := map[string]bool{}
	for _, p := range pairs {
		inPairs[p[0]] = true
		inPairs[p[1]] = true
	}
	var victims []string
	for _, h := range tp.HostIDs() {
		if !inPairs[h] && h != "world" {
			victims = append(victims, h)
		}
	}
	for _, p := range pairs { // warm the cache
		if _, err := tp.Path(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	h0, m0 := tp.RouteCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.SetNodeDown(victims[i%len(victims)], true)
		for _, p := range pairs {
			if _, err := tp.Path(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	hits, misses := tp.RouteCacheStats()
	hits, misses = hits-h0, misses-m0
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "routeHitRate")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pairs)), "ns/path")
	for i := 0; i < b.N && i < len(victims); i++ {
		tp.SetNodeDown(victims[i], false)
	}
}
